"""Parser and serializer for the XML subset the paper's data model uses.

The paper studies "the bare tree structures of the parse trees of XML
documents" (Section 2): element nesting and tag names only.  The parser
here accepts well-formed element-only XML — open tags (optionally with
attributes, which are preserved as extra labels of the form ``@name``),
close tags, self-closing tags, comments, processing instructions, and a
prolog.  Character data is skipped, matching the navigational model.

The parser is a hand-rolled single-pass scanner (no recursion, no
external dependencies) so that arbitrarily deep documents parse fine.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.trees.node import Node
from repro.trees.tree import Tree

__all__ = ["parse_xml", "to_xml", "iter_xml_events"]

_NAME = r"[A-Za-z_][\w.\-]*"
_TOKEN = re.compile(
    r"<\?.*?\?>"                # processing instruction / prolog
    r"|<!--.*?-->"              # comment
    r"|<!\[CDATA\[.*?\]\]>"     # CDATA (skipped)
    r"|<!DOCTYPE[^>]*>"         # doctype
    rf"|<\s*(?P<close>/)?\s*(?P<name>{_NAME})(?P<attrs>[^<>]*?)(?P<selfclose>/)?\s*>"
    r"|(?P<text>[^<]+)",
    re.DOTALL,
)
_ATTR = re.compile(rf"({_NAME})\s*=\s*(\"[^\"]*\"|'[^']*')")


def iter_xml_events(text: str):
    """Yield SAX-like events ``("start", name, attrs)``, ``("end", name)``.

    Used both by :func:`parse_xml` and by the streaming evaluators of
    :mod:`repro.streaming`, which consume documents without ever
    materializing the tree.
    """
    pos = 0
    length = len(text)
    while pos < length:
        match = _TOKEN.match(text, pos)
        if match is None:
            raise ParseError("malformed XML", position=pos)
        pos = match.end()
        name = match.group("name")
        if name is None:
            continue  # comment / PI / text / doctype
        if match.group("close"):
            yield ("end", name)
            continue
        attrs = dict(
            (key, value[1:-1]) for key, value in _ATTR.findall(match.group("attrs"))
        )
        yield ("start", name, attrs)
        if match.group("selfclose"):
            yield ("end", name)


def parse_xml(text: str, attributes_as_labels: bool = False) -> Tree:
    """Parse an element-only XML document into a :class:`Tree`.

    Parameters
    ----------
    text:
        The document.  Must contain exactly one root element.
    attributes_as_labels:
        When true, an attribute ``id="x7"`` adds the extra labels
        ``@id`` and ``@id=x7`` to the node, so that label predicates can
        select on attribute presence or value.
    """
    root: Node | None = None
    stack: list[Node] = []
    for event in iter_xml_events(text):
        if event[0] == "start":
            _, name, attrs = event
            extra: list[str] = []
            if attributes_as_labels:
                for key, value in attrs.items():
                    extra.append(f"@{key}")
                    extra.append(f"@{key}={value}")
            node = Node(name, extra_labels=extra)
            if stack:
                stack[-1].add(node)
            elif root is None:
                root = node
            else:
                raise ParseError("multiple root elements")
            stack.append(node)
        else:
            _, name = event
            if not stack:
                raise ParseError(f"unmatched closing tag </{name}>")
            if stack[-1].label != name:
                raise ParseError(
                    f"mismatched closing tag </{name}> for <{stack[-1].label}>"
                )
            stack.pop()
    if stack:
        raise ParseError(f"unclosed element <{stack[-1].label}>")
    if root is None:
        raise ParseError("empty document")
    return Tree.build(root)


def to_xml(tree: Tree, indent: int | None = None) -> str:
    """Serialize a :class:`Tree` back to element-only XML.

    Only primary labels are emitted (extra labels have no XML syntax).
    With ``indent`` set, pretty-prints with that many spaces per level.
    """
    out: list[str] = []
    # Iterative traversal emitting open tags on entry, close tags on exit.
    stack: list[tuple[int, bool]] = [(tree.root, False)]
    while stack:
        v, closing = stack.pop()
        pad = "" if indent is None else " " * (indent * tree.depth[v])
        newline = "" if indent is None else "\n"
        if closing:
            out.append(f"{pad}</{tree.label[v]}>{newline}")
            continue
        if tree.is_leaf(v):
            out.append(f"{pad}<{tree.label[v]}/>{newline}")
            continue
        out.append(f"{pad}<{tree.label[v]}>{newline}")
        stack.append((v, True))
        for child in reversed(tree.children[v]):
            stack.append((child, False))
    return "".join(out)
