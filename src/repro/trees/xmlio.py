"""Parser and serializer for the XML subset the paper's data model uses.

The paper studies "the bare tree structures of the parse trees of XML
documents" (Section 2): element nesting and tag names only.  The parser
here accepts well-formed element-only XML — open tags (optionally with
attributes, which are preserved as extra labels of the form ``@name``),
close tags, self-closing tags, comments, processing instructions, and a
prolog.  Character data is skipped, matching the navigational model.

The parser is a hand-rolled single-pass scanner (no recursion, no
external dependencies) so that arbitrarily deep documents parse fine —
bounded only by the explicit ``max_depth`` ceiling, which protects a
long-running service from pathological nesting.

Two failure modes (docs/ROBUSTNESS.md):

- **strict** (default): any malformation raises
  :class:`~repro.errors.ParseError` carrying the offending position,
- **recover=True**: the parser never raises on malformed input — it
  skips garbage, drops unmatched close tags, auto-closes unclosed
  elements, ignores extra roots — and reports everything it repaired as
  :class:`ParseWarning` records (the error taxonomy) through the
  ``warnings`` list the caller may pass in.  What it keeps round-trips:
  the recovered tree serializes back to well-formed XML.

``parse_xml`` is also a fault-injection site (``xml.parse``): an armed
:class:`repro.faults.FaultPlan` can fail it, delay it, or truncate the
document text before scanning (see docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError
from repro.faults import faultpoint, register_site
from repro.trees.node import Node
from repro.trees.tree import Tree

__all__ = [
    "DEFAULT_MAX_DEPTH",
    "ParseWarning",
    "parse_xml",
    "to_xml",
    "iter_xml_events",
]

#: default document depth ceiling: far beyond any real document, small
#: enough to bound memory against adversarial nesting
DEFAULT_MAX_DEPTH = 50_000

register_site("xml.parse", "XML text -> Tree parsing")

_NAME = r"[A-Za-z_][\w.\-]*"
_TOKEN = re.compile(
    r"<\?.*?\?>"                # processing instruction / prolog
    r"|<!--.*?-->"              # comment
    r"|<!\[CDATA\[.*?\]\]>"     # CDATA (skipped)
    r"|<!DOCTYPE[^>]*>"         # doctype
    rf"|<\s*(?P<close>/)?\s*(?P<name>{_NAME})(?P<attrs>[^<>]*?)(?P<selfclose>/)?\s*>"
    r"|(?P<text>[^<]+)",
    re.DOTALL,
)
_ATTR = re.compile(rf"({_NAME})\s*=\s*(\"[^\"]*\"|'[^']*')")


@dataclass(frozen=True)
class ParseWarning:
    """One repair the recovering parser performed.

    ``code`` is the taxonomy entry: ``garbage`` (unscannable bytes
    skipped), ``unmatched-close`` (close tag with no open element),
    ``mismatched-close`` (close tag not matching the innermost open
    element), ``unclosed`` (element auto-closed at a repair point or
    EOF), ``multiple-roots`` (extra root element dropped),
    ``max-depth`` (element deeper than the ceiling dropped), ``empty``
    (no element survived; placeholder root synthesized).
    """

    code: str
    message: str
    position: "int | None" = None


def _truncate_text(text: str, rng) -> str:
    """Corruption mutator for the ``xml.parse`` site: keep a seeded
    prefix of the document, which typically leaves elements unclosed."""
    if len(text) < 2:
        return ""
    return text[: rng.randrange(1, len(text))]


def iter_xml_events(text: str, recover: bool = False, warnings=None):
    """Yield SAX-like events ``("start", name, attrs)``, ``("end", name)``.

    Used both by :func:`parse_xml` and by the streaming evaluators of
    :mod:`repro.streaming`, which consume documents without ever
    materializing the tree.  With ``recover`` set, unscannable input is
    skipped (reported into ``warnings``) instead of raising.
    """
    for event in _scan(text, recover=recover, warnings=warnings):
        if event[0] == "start":
            yield event[:3]
        else:
            yield event[:2]


def _scan(text: str, recover: bool = False, warnings=None):
    """The position-carrying scanner behind :func:`iter_xml_events`:
    yields ``("start", name, attrs, pos)`` and ``("end", name, pos)``."""
    pos = 0
    length = len(text)
    while pos < length:
        match = _TOKEN.match(text, pos)
        if match is None:
            if not recover:
                raise ParseError("malformed XML", position=pos)
            if warnings is not None:
                warnings.append(
                    ParseWarning(
                        "garbage", "skipped unscannable input", position=pos
                    )
                )
            # resynchronize at the next tag opener
            nxt = text.find("<", pos + 1)
            pos = length if nxt < 0 else nxt
            continue
        pos = match.end()
        name = match.group("name")
        if name is None:
            continue  # comment / PI / text / doctype
        if match.group("close"):
            yield ("end", name, match.start())
            continue
        attrs = dict(
            (key, value[1:-1]) for key, value in _ATTR.findall(match.group("attrs"))
        )
        yield ("start", name, attrs, match.start())
        if match.group("selfclose"):
            yield ("end", name, match.start())


def parse_xml(
    text: str,
    attributes_as_labels: bool = False,
    *,
    recover: bool = False,
    max_depth: "int | None" = None,
    warnings: "list[ParseWarning] | None" = None,
) -> Tree:
    """Parse an element-only XML document into a :class:`Tree`.

    Parameters
    ----------
    text:
        The document.  Must contain exactly one root element (strict
        mode).
    attributes_as_labels:
        When true, an attribute ``id="x7"`` adds the extra labels
        ``@id`` and ``@id=x7`` to the node, so that label predicates can
        select on attribute presence or value.
    recover:
        Never raise on malformed input — skip/repair and record what
        happened into ``warnings``.  The returned tree contains exactly
        the elements that survived.
    max_depth:
        Document depth ceiling (default :data:`DEFAULT_MAX_DEPTH`).
        Strict mode raises when exceeded; recovery drops the too-deep
        subtrees with a ``max-depth`` warning.
    warnings:
        Optional list the recovering parser appends
        :class:`ParseWarning` records to.
    """
    text = faultpoint("xml.parse", text, mutator=_truncate_text)
    if max_depth is None:
        max_depth = DEFAULT_MAX_DEPTH
    warns = warnings if warnings is not None else []

    def warn(code: str, message: str, position: "int | None" = None) -> None:
        warns.append(ParseWarning(code, message, position))

    root: Node | None = None
    # (node, position of its open tag) — the position makes unclosed-at-
    # EOF errors point back at the offending open tag
    stack: list[tuple[Node, int]] = []
    skip_depth = 0  # >0 while inside a dropped (too-deep / extra-root) element
    for event in _scan(text, recover=recover, warnings=warns):
        if event[0] == "start":
            _, name, attrs, position = event
            if skip_depth:
                skip_depth += 1
                continue
            if len(stack) >= max_depth:
                if not recover:
                    raise ParseError(
                        f"document nests deeper than max_depth={max_depth}",
                        position=position,
                    )
                warn(
                    "max-depth",
                    f"dropped <{name}> nested deeper than {max_depth}",
                    position,
                )
                skip_depth = 1
                continue
            extra: list[str] = []
            if attributes_as_labels:
                for key, value in attrs.items():
                    extra.append(f"@{key}")
                    extra.append(f"@{key}={value}")
            node = Node(name, extra_labels=extra)
            if stack:
                stack[-1][0].add(node)
            elif root is None:
                root = node
            else:
                if not recover:
                    raise ParseError("multiple root elements", position=position)
                warn(
                    "multiple-roots",
                    f"dropped extra root element <{name}>",
                    position,
                )
                skip_depth = 1
                continue
            stack.append((node, position))
        else:
            _, name, position = event
            if skip_depth:
                skip_depth -= 1
                continue
            if not stack:
                if not recover:
                    raise ParseError(
                        f"unmatched closing tag </{name}>", position=position
                    )
                warn(
                    "unmatched-close",
                    f"dropped closing tag </{name}> with no open element",
                    position,
                )
                continue
            if stack[-1][0].label != name:
                if not recover:
                    raise ParseError(
                        f"mismatched closing tag </{name}> for "
                        f"<{stack[-1][0].label}>",
                        position=position,
                    )
                warn(
                    "mismatched-close",
                    f"closing tag </{name}> does not match open "
                    f"<{stack[-1][0].label}>",
                    position,
                )
                if any(entry[0].label == name for entry in stack):
                    # auto-close intervening elements up to the match
                    while stack[-1][0].label != name:
                        warn(
                            "unclosed",
                            f"auto-closed <{stack[-1][0].label}>",
                            position,
                        )
                        stack.pop()
                    stack.pop()
                # else: stray close for something never opened — drop it
                continue
            stack.pop()
    if stack:
        if not recover:
            raise ParseError(
                f"unclosed element <{stack[-1][0].label}>",
                position=stack[-1][1],
            )
        for open_node, position in reversed(stack):
            warn("unclosed", f"auto-closed <{open_node.label}> at EOF", position)
        stack.clear()
    if root is None:
        if not recover:
            raise ParseError("empty document", position=0)
        warn("empty", "no element survived; synthesized placeholder root")
        root = Node("#document")
    return Tree.build(root)


def to_xml(tree: Tree, indent: int | None = None) -> str:
    """Serialize a :class:`Tree` back to element-only XML.

    Only primary labels are emitted (extra labels have no XML syntax).
    With ``indent`` set, pretty-prints with that many spaces per level.
    """
    out: list[str] = []
    # Iterative traversal emitting open tags on entry, close tags on exit.
    stack: list[tuple[int, bool]] = [(tree.root, False)]
    while stack:
        v, closing = stack.pop()
        pad = "" if indent is None else " " * (indent * tree.depth[v])
        newline = "" if indent is None else "\n"
        if closing:
            out.append(f"{pad}</{tree.label[v]}>{newline}")
            continue
        if tree.is_leaf(v):
            out.append(f"{pad}<{tree.label[v]}/>{newline}")
            continue
        out.append(f"{pad}<{tree.label[v]}>{newline}")
        stack.append((v, True))
        for child in reversed(tree.children[v]):
            stack.append((child, False))
    return "".join(out)
