"""Mutable tree nodes used while *constructing* trees.

A :class:`Node` is a lightweight builder object.  Algorithms never touch
nodes directly: once a tree is assembled it is frozen into a
:class:`repro.trees.tree.Tree`, which exposes integer node identifiers and
precomputed index arrays.

The paper allows nodes to carry *multiple* labels (Section 2: "We allow
for tree nodes to be labeled with multiple labels").  A node therefore has
a primary ``label`` (used when serializing to XML) plus an optional set of
``extra_labels``.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["Node"]


class Node:
    """A node of an unranked ordered tree under construction.

    Parameters
    ----------
    label:
        The primary label (the XML tag name when round-tripping).
    children:
        Optional iterable of child nodes, in sibling order.
    extra_labels:
        Additional labels beyond the primary one; the relational view
        exposes ``Lab_a(v)`` for the primary label and every extra label.
    """

    __slots__ = ("label", "children", "extra_labels")

    def __init__(
        self,
        label: str,
        children: Iterable["Node"] | None = None,
        extra_labels: Iterable[str] | None = None,
    ):
        self.label = label
        self.children: list[Node] = list(children) if children is not None else []
        self.extra_labels: frozenset[str] = (
            frozenset(extra_labels) if extra_labels is not None else frozenset()
        )

    @property
    def labels(self) -> frozenset[str]:
        """All labels of this node (primary plus extras)."""
        if not self.extra_labels:
            return frozenset((self.label,))
        return self.extra_labels | {self.label}

    def add(self, child: "Node") -> "Node":
        """Append ``child`` as the rightmost child and return it (for chaining)."""
        self.children.append(child)
        return child

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants in pre-order (iteratively,
        so arbitrarily deep trees are safe)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def size(self) -> int:
        """Number of nodes in the subtree rooted here."""
        return sum(1 for _ in self.walk())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.label!r}, {len(self.children)} children)"

    @staticmethod
    def from_tuple(spec: tuple | str) -> "Node":
        """Build a node tree from a nested ``(label, [children...])`` spec.

        A bare string is shorthand for a leaf.  Examples::

            Node.from_tuple(("a", ["b", ("c", ["d"])]))
        """
        # Iterative construction to support deep specs.
        if isinstance(spec, str):
            return Node(spec)
        label, child_specs = spec
        root = Node(label)
        stack: list[tuple[Node, list]] = [(root, list(child_specs))]
        while stack:
            parent, specs = stack[-1]
            if not specs:
                stack.pop()
                continue
            head = specs.pop(0)
            if isinstance(head, str):
                parent.add(Node(head))
            else:
                child_label, grandchildren = head
                child = parent.add(Node(child_label))
                stack.append((child, list(grandchildren)))
        return root
