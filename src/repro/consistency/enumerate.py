"""Backtrack-free enumeration of CQ solutions (Figure 6, Props 6.9/6.10).

For an *acyclic, tree-shaped* conjunctive query, the maximal
arc-consistent pre-valuation Θ is a compact representation of exactly
the solutions (Proposition 6.9 — this is the full-reducer property of
Yannakakis' algorithm, and the idea underlying holistic twig joins).

- :func:`enumerate_satisfactions` is the recursive algorithm of Figure 6
  verbatim (generalized to yield instead of output): variables numbered
  in pre-order of the query tree; each candidate value is checked only
  against the atom connecting the variable to its parent — by
  Proposition 6.9 no backtracking ever occurs.
- :func:`solutions_with_pointers` is the refinement after Prop. 6.10:
  compatibility pointers between Θ(parent)-values and Θ(child)-values
  are precomputed, so enumeration touches only elements that participate
  in solutions, giving O(|Q| · ||A|| + ||Q(A)||) total.
"""

from __future__ import annotations

from typing import Iterator

from repro.consistency.arc import arc_consistency_worklist
from repro.cq.query import ConjunctiveQuery, atom_axis
from repro.datalog.syntax import is_variable
from repro.errors import QueryError
from repro.trees.structure import TreeStructure
from repro.trees.tree import Tree

__all__ = [
    "is_tree_shaped",
    "query_tree",
    "enumerate_satisfactions",
    "solutions_with_pointers",
]


def is_tree_shaped(query: ConjunctiveQuery) -> bool:
    """Connected, and the query graph is a tree with exactly one binary
    atom per edge (the shape Figure 6 operates on)."""
    adj = query.adjacency()
    variables = query.variables()
    if not variables:
        return False
    edges = set()
    for atom in query.binary_atoms():
        s, t = atom.args
        if not (is_variable(s) and is_variable(t)) or s == t:
            return False
        pair = frozenset((s, t))
        if pair in edges:
            return False
        edges.add(pair)
    if len(edges) != len(variables) - 1:
        return False
    return query.is_connected()


def query_tree(
    query: ConjunctiveQuery, root: str | None = None
) -> tuple[list[str], dict[str, str], dict[str, tuple]]:
    """Root the query graph: returns (variables in query-tree pre-order,
    parent map, and for each non-root variable the atom connecting it to
    its parent as ``(axis_value, parent_is_source)``)."""
    if not is_tree_shaped(query):
        raise QueryError(f"query is not tree-shaped: {query}")
    atom_of: dict[frozenset, tuple] = {}
    for atom in query.binary_atoms():
        s, t = atom.args
        atom_of[frozenset((s, t))] = (atom_axis(atom).value, s, t)
    adj = query.adjacency()
    variables = query.variables()
    root = root if root is not None else (
        query.head[0] if query.head else variables[0]
    )
    order: list[str] = []
    parent: dict[str, str] = {}
    connecting: dict[str, tuple] = {}
    stack = [root]
    seen = {root}
    while stack:
        x = stack.pop()
        order.append(x)
        for y in sorted(adj[x]):
            if y not in seen:
                seen.add(y)
                parent[y] = x
                axis, s, _t = atom_of[frozenset((x, y))]
                connecting[y] = (axis, s == x)
                stack.append(y)
    return order, parent, connecting


def enumerate_satisfactions(
    query: ConjunctiveQuery,
    tree: Tree,
    theta: dict[str, set[int]] | None = None,
    structure: TreeStructure | None = None,
) -> Iterator[dict[str, int]]:
    """Figure 6, as a generator of full valuations.

    ``theta`` defaults to the maximal arc-consistent pre-valuation; pass
    one explicitly to enumerate from a pre-computed representation.
    """
    query = query.canonicalized().validate()
    structure = structure or TreeStructure(tree)
    if theta is None:
        theta = arc_consistency_worklist(query, tree, structure)
        if theta is None:
            return
    order, parent, connecting = query_tree(query)
    n_vars = len(order)
    valuation: dict[str, int] = {}

    # Figure 6 checks each candidate only against the atom connecting
    # x_i to parent(x_i); in query-tree pre-order the parent is always
    # already assigned, and Proposition 6.9 guarantees no dead ends.
    def recurse(i: int) -> Iterator[dict[str, int]]:
        x = order[i]
        for v in sorted(theta[x]):
            if i == 0:
                compatible = True
            else:
                axis, parent_is_source = connecting[x]
                p_val = valuation[parent[x]]
                if parent_is_source:
                    compatible = structure.holds_binary(axis, p_val, v)
                else:
                    compatible = structure.holds_binary(axis, v, p_val)
            if compatible:
                valuation[x] = v
                if i == n_vars - 1:
                    yield dict(valuation)
                else:
                    yield from recurse(i + 1)

    yield from recurse(0)


def solutions_with_pointers(
    query: ConjunctiveQuery,
    tree: Tree,
    structure: TreeStructure | None = None,
    project_to_head: bool = True,
) -> "set[tuple[int, ...]] | list[dict[str, int]]":
    """Proposition 6.10: output-sensitive enumeration.

    After arc consistency, build for every variable y with parent x the
    pointer lists ``compatible[y][v] = [w in Θ(y) : R(v, w)]`` for each
    v ∈ Θ(x) — by Proposition 6.9 every listed w extends to a full
    solution, so the recursion below never dead-ends and its work is
    proportional to the output.

    Returns the set of head tuples (or, with ``project_to_head=False``,
    the list of full valuations).
    """
    query = query.canonicalized().validate()
    structure = structure or TreeStructure(tree)
    theta = arc_consistency_worklist(query, tree, structure)
    if theta is None:
        return set() if project_to_head else []
    order, parent, connecting = query_tree(query)

    compatible: dict[str, dict[int, list[int]]] = {}
    for y in order[1:]:
        axis, parent_is_source = connecting[y]
        x = parent[y]
        table: dict[int, list[int]] = {}
        for v in theta[x]:
            if parent_is_source:
                ws = [
                    w for w in structure.successors(axis, v) if w in theta[y]
                ]
            else:
                ws = [
                    w for w in structure.predecessors(axis, v) if w in theta[y]
                ]
            table[v] = ws
        compatible[y] = table

    valuations: list[dict[str, int]] = []
    valuation: dict[str, int] = {}
    n_vars = len(order)

    def recurse(i: int) -> None:
        if i == n_vars:
            valuations.append(dict(valuation))
            return
        y = order[i]
        candidates = (
            sorted(theta[y]) if i == 0 else compatible[y][valuation[parent[y]]]
        )
        for w in candidates:
            valuation[y] = w
            recurse(i + 1)

    recurse(0)
    if not project_to_head:
        return valuations
    return {tuple(v[x] for x in query.head) for v in valuations}
