"""Global vs. arc-consistency (Section 6 of the paper).

- :mod:`~repro.consistency.arc` — maximal arc-consistent pre-valuations,
  via the Horn-SAT encoding of Proposition 6.2 and via a direct AC
  worklist algorithm (ablation A1),
- :mod:`~repro.consistency.xproperty` — the X-underbar property
  (Definition 6.3), checkers, and the Proposition 6.6 axis/order table,
- :mod:`~repro.consistency.minval` — minimum valuations (Lemma 6.4) and
  the X-property evaluation algorithm (Theorem 6.5),
- :mod:`~repro.consistency.dichotomy` — the Dichotomy Theorem 6.8
  classifier for axis signatures,
- :mod:`~repro.consistency.enumerate` — backtrack-free enumeration of all
  solutions of acyclic CQs from a pre-valuation (Figure 6, Propositions
  6.9/6.10, with the pointer refinement).
"""

from repro.consistency.arc import (
    arc_consistency_hornsat,
    arc_consistency_worklist,
    is_arc_consistent,
)
from repro.consistency.xproperty import (
    has_x_property,
    axis_has_x_property,
    x_property_table,
    ORDERS,
)
from repro.consistency.minval import (
    minimum_valuation,
    evaluate_boolean_xproperty,
    check_tuple_xproperty,
)
from repro.consistency.dichotomy import classify_signature, tractable_order
from repro.consistency.enumerate import (
    enumerate_satisfactions,
    solutions_with_pointers,
    is_tree_shaped,
)
from repro.consistency.counting import count_solutions, count_answers_per_value
from repro.consistency.abstract import ExplicitStructure

__all__ = [
    "arc_consistency_hornsat",
    "arc_consistency_worklist",
    "is_arc_consistent",
    "has_x_property",
    "axis_has_x_property",
    "x_property_table",
    "ORDERS",
    "minimum_valuation",
    "evaluate_boolean_xproperty",
    "check_tuple_xproperty",
    "classify_signature",
    "tractable_order",
    "enumerate_satisfactions",
    "solutions_with_pointers",
    "is_tree_shaped",
    "count_solutions",
    "count_answers_per_value",
    "ExplicitStructure",
]
