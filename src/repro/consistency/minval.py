"""Minimum valuations and X-property-based evaluation (Lemma 6.4,
Theorem 6.5).

If every relation used by a conjunctive query has the X-property w.r.t.
a total order <, then the valuation picking the <-minimal element of
each Θ(x) of an arc-consistent pre-valuation Θ is *consistent* — so a
Boolean CQ is evaluated in O(||A|| · |Q|): compute the maximal
arc-consistent pre-valuation, succeed iff it exists.
"""

from __future__ import annotations

from repro.consistency.arc import arc_consistency_worklist
from repro.cq.query import ConjunctiveQuery, atom_axis
from repro.consistency.xproperty import order_position
from repro.datalog.syntax import Atom, is_variable
from repro.errors import IntractableSignatureError
from repro.trees.structure import TreeStructure
from repro.trees.tree import Tree

__all__ = [
    "minimum_valuation",
    "evaluate_boolean_xproperty",
    "check_tuple_xproperty",
    "is_consistent_valuation",
]


def minimum_valuation(
    theta: dict[str, set[int]], tree: Tree, order: str
) -> dict[str, int]:
    """θ(x) = the <-minimal node of Θ(x) (Lemma 6.4's witness)."""
    position = order_position(tree, order)
    return {x: min(vs, key=lambda v: position[v]) for x, vs in theta.items()}


def is_consistent_valuation(
    query: ConjunctiveQuery,
    tree: Tree,
    valuation: dict[str, int],
    structure: TreeStructure | None = None,
) -> bool:
    """Does θ satisfy every atom of the query?"""
    query = query.canonicalized()
    structure = structure or TreeStructure(tree)

    def val(t):
        return valuation[t] if is_variable(t) else t

    for atom in query.atoms:
        if atom.arity == 1:
            pred = atom.pred
            v = val(atom.args[0])
            ok = (
                v == int(pred.split(":", 1)[1])
                if pred.startswith("Const:")
                else structure.holds_unary(pred, v)
            )
            if not ok:
                return False
        else:
            axis = atom_axis(atom).value
            if not structure.holds_binary(axis, val(atom.args[0]), val(atom.args[1])):
                return False
    return True


def evaluate_boolean_xproperty(
    query: ConjunctiveQuery,
    tree: Tree,
    order: str | None = None,
    structure: TreeStructure | None = None,
    return_witness: bool = False,
):
    """Theorem 6.5: evaluate a Boolean CQ over a structure with the
    X-property w.r.t. ``order`` in time O(||A|| · |Q|).

    With ``order=None`` the order is inferred from the query's signature
    via the Dichotomy classifier (raising
    :class:`IntractableSignatureError` if the signature is NP-complete).
    With ``return_witness`` a satisfying valuation (the minimum
    valuation) is returned instead of a bare bool.
    """
    from repro.consistency.dichotomy import tractable_order

    query = query.canonicalized().validate()
    if order is None:
        order = tractable_order(query.signature())
        if order is None:
            raise IntractableSignatureError(
                f"signature {sorted(a.value for a in query.signature())} has "
                f"no X-property order (Theorem 6.8: NP-complete)"
            )
    theta = arc_consistency_worklist(query, tree, structure)
    if theta is None:
        return (False, None) if return_witness else False
    if not return_witness:
        return True
    witness = minimum_valuation(theta, tree, order)
    return True, witness


def check_tuple_xproperty(
    query: ConjunctiveQuery,
    tree: Tree,
    candidate: tuple[int, ...],
    order: str | None = None,
) -> bool:
    """Membership of a tuple in a k-ary CQ answer (the paragraph after
    Theorem 6.5): conjoin singleton predicates X_i = {a_i} to the query
    and evaluate the resulting Boolean query."""
    if len(candidate) != len(query.head):
        raise ValueError("candidate arity does not match query head")
    extra = tuple(
        Atom(f"Const:{a}", (x,)) for x, a in zip(query.head, candidate)
    )
    boolean = ConjunctiveQuery((), query.atoms + extra)
    return evaluate_boolean_xproperty(boolean, tree, order=order)
