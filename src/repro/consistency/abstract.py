"""Explicit finite structures of unary and binary relations.

Section 6 develops arc-consistency for arbitrary relational structures
(Example 6.1 is a two-relation database, not a tree).
:class:`ExplicitStructure` implements the same access protocol as
:class:`repro.trees.structure.TreeStructure` — ``domain``,
``holds_unary``, ``unary_members``, ``holds_binary``, ``successors``,
``predecessors`` — over explicitly listed tuples, so the AC algorithms
run unchanged on it.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import QueryError

__all__ = ["ExplicitStructure"]


class ExplicitStructure:
    """A finite structure given by explicit relation contents."""

    def __init__(
        self,
        domain: Iterable[int],
        unary: dict[str, Iterable[int]] | None = None,
        binary: dict[str, Iterable[tuple[int, int]]] | None = None,
    ):
        self._domain = sorted(set(domain))
        self._unary = {
            name: set(members) for name, members in (unary or {}).items()
        }
        self._binary: dict[str, set[tuple[int, int]]] = {}
        self._succ: dict[str, dict[int, list[int]]] = {}
        self._pred: dict[str, dict[int, list[int]]] = {}
        for name, pairs in (binary or {}).items():
            pair_set = set(pairs)
            self._binary[name] = pair_set
            succ: dict[int, list[int]] = {}
            pred: dict[int, list[int]] = {}
            for u, v in sorted(pair_set):
                succ.setdefault(u, []).append(v)
                pred.setdefault(v, []).append(u)
            self._succ[name] = succ
            self._pred[name] = pred

    @property
    def domain(self) -> list[int]:
        return self._domain

    def holds_unary(self, name: str, v: int) -> bool:
        if name == "Dom":
            return v in set(self._domain)
        if name not in self._unary:
            raise QueryError(f"unknown unary relation {name!r}")
        return v in self._unary[name]

    def unary_members(self, name: str) -> Iterator[int]:
        if name == "Dom":
            yield from self._domain
            return
        if name not in self._unary:
            raise QueryError(f"unknown unary relation {name!r}")
        yield from sorted(self._unary[name])

    def _rel(self, name: str) -> set[tuple[int, int]]:
        if name not in self._binary:
            raise QueryError(f"unknown binary relation {name!r}")
        return self._binary[name]

    def holds_binary(self, name: str, u: int, v: int) -> bool:
        return (u, v) in self._rel(name)

    def successors(self, name: str, u: int) -> Iterator[int]:
        self._rel(name)
        yield from self._succ[name].get(u, ())

    def predecessors(self, name: str, v: int) -> Iterator[int]:
        self._rel(name)
        yield from self._pred[name].get(v, ())

    def pairs(self, name: str) -> Iterator[tuple[int, int]]:
        yield from sorted(self._rel(name))
