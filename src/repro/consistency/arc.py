"""Arc-consistent pre-valuations (Section 6, Proposition 6.2).

A *pre-valuation* Θ maps every query variable to a nonempty node set;
it is arc-consistent iff every value in every Θ(x) is supported through
every atom touching x.  :func:`arc_consistency_hornsat` is the paper's
reduction to Horn-SAT (computing, for each (x, v), whether v must be
*excluded*), solved with Minoux' algorithm; total time O(||A|| · |Q|).
:func:`arc_consistency_worklist` is the classical AC worklist algorithm
with support counters — same bound, different constants (ablation A1).

Both return the unique subset-maximal arc-consistent pre-valuation, or
``None`` if none exists (then the query is unsatisfiable).
"""

from __future__ import annotations

from collections import deque

from repro.cq.query import ConjunctiveQuery, atom_axis
from repro.datalog.syntax import Atom, is_variable
from repro.errors import QueryError
from repro.hornsat.minoux import minoux
from repro.hornsat.program import HornClause, HornProgram
from repro.trees.structure import TreeStructure
from repro.trees.tree import Tree

__all__ = [
    "arc_consistency_hornsat",
    "arc_consistency_worklist",
    "is_arc_consistent",
]

PreValuation = "dict[str, set[int]]"


def _rel_name(atom: Atom) -> str:
    """Binary relation name: the canonical axis for tree atoms, the raw
    predicate name for abstract structures (Example 6.1 style)."""
    try:
        return atom_axis(atom).value
    except QueryError:
        return atom.pred


def _normalize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Canonicalize and replace constants by fresh guarded variables so
    the AC algorithms only see variables."""
    try:
        query = query.canonicalized().validate()
    except QueryError:
        pass  # abstract (non-axis) relations: keep atoms as written
    counter = 0
    new_atoms: list[Atom] = []
    for atom in query.atoms:
        args = []
        for t in atom.args:
            if is_variable(t):
                args.append(t)
            else:
                fresh = f"_k{counter}"
                counter += 1
                new_atoms.append(Atom(f"Const:{t}", (fresh,)))
                args.append(fresh)
        new_atoms.append(Atom(atom.pred, tuple(args)))
    return ConjunctiveQuery(query.head, tuple(new_atoms))


def _holds_unary(structure: TreeStructure, pred: str, v: int) -> bool:
    if pred.startswith("Const:"):
        return v == int(pred.split(":", 1)[1])
    return structure.holds_unary(pred, v)


def arc_consistency_hornsat(
    query: ConjunctiveQuery,
    tree: Tree,
    structure: TreeStructure | None = None,
) -> "PreValuation | None":
    """Proposition 6.2, literally: propositional atoms ``Theta(x, v)``
    mean "v is NOT in Θ(x)"; the Horn clauses are

    - ``Theta(x, v) <-``                        for P(x) in Q with ¬P(v),
    - ``Theta(x, v) <- ∧ {Theta(y, w) | R(v, w)}``  for R(x, y) in Q,
    - ``Theta(y, w) <- ∧ {Theta(x, v) | R(v, w)}``  for R(x, y) in Q.

    The minimal model is computed by Minoux' algorithm and complemented.
    """
    query = _normalize(query)
    structure = structure or TreeStructure(tree)
    domain = list(structure.domain)
    program = HornProgram()
    for atom in query.atoms:
        if atom.arity == 1:
            x = atom.args[0]
            for v in domain:
                if not _holds_unary(structure, atom.pred, v):
                    program.fact(("T", x, v))
        else:
            axis = _rel_name(atom)
            x, y = atom.args
            if x == y:
                # R(x, x): v survives only if R(v, v)
                for v in domain:
                    if not structure.holds_binary(axis, v, v):
                        program.fact(("T", x, v))
                continue
            for v in domain:
                body = tuple(
                    ("T", y, w) for w in structure.successors(axis, v)
                )
                program.rule(("T", x, v), *body)
            for w in domain:
                body = tuple(
                    ("T", x, v) for v in structure.predecessors(axis, w)
                )
                program.rule(("T", y, w), *body)
    excluded, _sat = minoux(program)
    theta: dict[str, set[int]] = {}
    for x in query.variables():
        theta[x] = {v for v in domain if ("T", x, v) not in excluded}
        if not theta[x]:
            return None
    return theta


def arc_consistency_worklist(
    query: ConjunctiveQuery,
    tree: Tree,
    structure: TreeStructure | None = None,
) -> "PreValuation | None":
    """Direct AC with support counters (AC-4 style).

    For every binary atom R(x, y) and every v ∈ Θ(x) we track the number
    of supports |{w ∈ Θ(y) : R(v, w)}|; deleting a value decrements the
    counters of the values it supported, cascading via a deque.
    """
    query = _normalize(query)
    structure = structure or TreeStructure(tree)
    domain = list(structure.domain)
    variables = query.variables()

    # Phase 1 — node consistency: unary atoms and R(x, x) self-loops.
    theta: dict[str, set[int]] = {x: set(domain) for x in variables}
    for atom in query.unary_atoms():
        x = atom.args[0]
        theta[x] = {
            v for v in theta[x] if _holds_unary(structure, atom.pred, v)
        }
    for atom in query.binary_atoms():
        x, y = atom.args
        if x == y:
            axis = _rel_name(atom)
            theta[x] = {
                v for v in theta[x] if structure.holds_binary(axis, v, v)
            }

    # Phase 2 — build directed support structures over the (now stable)
    # initial domains.  For the arc (x -> y) of atom R(x, y):
    #   support_count[v] = |{w in Θ(y) : R(v, w)}|,
    #   supporters[w]    = the v's whose support set contains w.
    arcs: list[tuple[str, str]] = []
    support_count: list[dict[int, int]] = []
    supporters: list[dict[int, list[int]]] = []
    arcs_into: dict[str, list[int]] = {x: [] for x in variables}

    for atom in query.binary_atoms():
        axis = _rel_name(atom)
        x, y = atom.args
        if x == y:
            continue
        fwd_count: dict[int, int] = {}
        fwd_sup: dict[int, list[int]] = {}
        for v in theta[x]:
            ws = [w for w in structure.successors(axis, v) if w in theta[y]]
            fwd_count[v] = len(ws)
            for w in ws:
                fwd_sup.setdefault(w, []).append(v)
        arcs_into[y].append(len(arcs))
        arcs.append((x, y))
        support_count.append(fwd_count)
        supporters.append(fwd_sup)
        bwd_count: dict[int, int] = {}
        bwd_sup: dict[int, list[int]] = {}
        for w in theta[y]:
            vs = [v for v in structure.predecessors(axis, w) if v in theta[x]]
            bwd_count[w] = len(vs)
            for v in vs:
                bwd_sup.setdefault(v, []).append(w)
        arcs_into[x].append(len(arcs))
        arcs.append((y, x))
        support_count.append(bwd_count)
        supporters.append(bwd_sup)

    # Phase 3 — delete unsupported values and cascade.  Values removed in
    # phase 1 never entered any support structure, so they need no queue
    # entries of their own.
    queue: deque[tuple[str, int]] = deque()

    def delete(x: str, v: int) -> None:
        if v in theta[x]:
            theta[x].discard(v)
            queue.append((x, v))

    for i, (x, _y) in enumerate(arcs):
        for v in list(theta[x]):
            if support_count[i].get(v, 0) == 0:
                delete(x, v)

    while queue:
        y, w = queue.popleft()
        for i in arcs_into[y]:
            x = arcs[i][0]
            for v in supporters[i].get(w, ()):
                if v in theta[x]:
                    support_count[i][v] -= 1
                    if support_count[i][v] == 0:
                        delete(x, v)

    for x in variables:
        if not theta[x]:
            return None
    return theta


def is_arc_consistent(
    query: ConjunctiveQuery,
    tree: Tree,
    theta: "PreValuation",
    structure: TreeStructure | None = None,
) -> bool:
    """Check the definition of arc-consistency directly (used in tests
    and by hypothesis properties)."""
    query = _normalize(query)
    structure = structure or TreeStructure(tree)
    for x in query.variables():
        if not theta.get(x):
            return False
    for atom in query.unary_atoms():
        x = atom.args[0]
        if any(not _holds_unary(structure, atom.pred, v) for v in theta[x]):
            return False
    for atom in query.binary_atoms():
        axis = _rel_name(atom)
        x, y = atom.args
        if x == y:
            if any(not structure.holds_binary(axis, v, v) for v in theta[x]):
                return False
            continue
        for v in theta[x]:
            if not any(w in theta[y] for w in structure.successors(axis, v)):
                return False
        for w in theta[y]:
            if not any(v in theta[x] for v in structure.predecessors(axis, w)):
                return False
    return True
