"""Counting solutions of tree-shaped conjunctive queries without
enumerating them.

A corollary of the Section 6 machinery the paper does not spell out but
that falls out of Propositions 6.9/6.10: on the maximal arc-consistent
pre-valuation of a tree-shaped query, the number of full solutions
factorizes along the query tree — each value v ∈ Θ(y) contributes the
*product* over y's query-tree children of the *sum* of the
contributions of its compatible values.  One bottom-up pass computes

- ``count_solutions`` — |{θ : θ satisfies Q}| (all variables), and
- ``count_answers_per_value`` — for each v ∈ Θ(x) of a chosen variable,
  the number of solutions with θ(x) = v,

in time O(‖A‖·|Q|), versus the Θ(‖Q(A)‖) cost of enumeration — the gap
measured by the counting ablation in ``bench_fig6_enumeration.py``.
"""

from __future__ import annotations

from repro.consistency.arc import arc_consistency_worklist
from repro.consistency.enumerate import query_tree
from repro.cq.query import ConjunctiveQuery
from repro.trees.structure import TreeStructure
from repro.trees.tree import Tree

__all__ = ["count_solutions", "count_answers_per_value"]


def _subtree_counts(
    query: ConjunctiveQuery,
    tree: Tree,
    structure: TreeStructure | None = None,
) -> "tuple[list[str], dict[str, str], dict[str, dict[int, int]]] | None":
    """For every variable y and v ∈ Θ(y): the number of satisfying
    assignments of the query-tree subtree rooted at y with y ↦ v.

    Returns (pre-order variables, parent map, counts) or None when the
    query is unsatisfiable.
    """
    query = query.canonicalized().validate()
    structure = structure or TreeStructure(tree)
    theta = arc_consistency_worklist(query, tree, structure)
    if theta is None:
        return None
    order, parent, connecting = query_tree(query)

    children: dict[str, list[str]] = {x: [] for x in order}
    for y, x in parent.items():
        children[x].append(y)

    counts: dict[str, dict[int, int]] = {}
    for y in reversed(order):
        table: dict[int, int] = {}
        kids = children[y]
        if not kids:
            for v in theta[y]:
                table[v] = 1
            counts[y] = table
            continue
        for v in theta[y]:
            total = 1
            for child in kids:
                axis, parent_is_source = connecting[child]
                child_counts = counts[child]
                if parent_is_source:
                    compatible = (
                        w
                        for w in structure.successors(axis, v)
                        if w in child_counts
                    )
                else:
                    compatible = (
                        w
                        for w in structure.predecessors(axis, v)
                        if w in child_counts
                    )
                branch = sum(child_counts[w] for w in compatible)
                if branch == 0:
                    total = 0
                    break
                total *= branch
            if total:
                table[v] = total
        counts[y] = table
    return order, parent, counts


def count_solutions(
    query: ConjunctiveQuery,
    tree: Tree,
    structure: TreeStructure | None = None,
) -> int:
    """The number of satisfying valuations of a tree-shaped CQ.

    By Proposition 6.9 the per-value subtree counts are exact (no value
    in Θ dead-ends), so the total is the sum over the root variable.
    """
    result = _subtree_counts(query, tree, structure)
    if result is None:
        return 0
    order, _parent, counts = result
    return sum(counts[order[0]].values())


def count_answers_per_value(
    query: ConjunctiveQuery,
    tree: Tree,
    variable: str | None = None,
    structure: TreeStructure | None = None,
) -> dict[int, int]:
    """For each node v, the number of solutions mapping ``variable`` to
    v (default: the first head variable).  Rooting the query tree at the
    chosen variable makes its subtree counts the answer multiplicities.
    """
    query = query.canonicalized().validate()
    target = variable if variable is not None else (
        query.head[0] if query.head else query.variables()[0]
    )
    rooted = query.with_head((target,))
    structure = structure or TreeStructure(tree)
    theta = arc_consistency_worklist(rooted, tree, structure)
    if theta is None:
        return {}
    # re-run the bottom-up pass with the query tree rooted at `target`
    order, parent, connecting = query_tree(rooted, root=target)
    children: dict[str, list[str]] = {x: [] for x in order}
    for y, x in parent.items():
        children[x].append(y)
    counts: dict[str, dict[int, int]] = {}
    for y in reversed(order):
        table: dict[int, int] = {}
        for v in theta[y]:
            total = 1
            for child in children[y]:
                axis, parent_is_source = connecting[child]
                child_counts = counts[child]
                if parent_is_source:
                    ws = (
                        w
                        for w in structure.successors(axis, v)
                        if w in child_counts
                    )
                else:
                    ws = (
                        w
                        for w in structure.predecessors(axis, v)
                        if w in child_counts
                    )
                branch = sum(child_counts[w] for w in ws)
                if branch == 0:
                    total = 0
                    break
                total *= branch
            if total:
                table[v] = total
        counts[y] = table
    return counts[target]
