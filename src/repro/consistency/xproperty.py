"""The X-underbar property (Definition 6.3, Figure 5, Proposition 6.6).

A binary relation R has the X-property w.r.t. a total order < iff for
all n0 < n1 and n2 < n3:  R(n1, n2) ∧ R(n0, n3) ⇒ R(n0, n2)
("crossing arcs imply the underbar arc").

Proposition 6.6 lists which axes have it w.r.t. which of the three tree
orders — :data:`PROP_6_6` records the claim, :func:`axis_has_x_property`
checks it on a concrete tree (experiment E11 verifies the claim
exhaustively over small trees and falsifies all other combinations).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.trees.axes import Axis, axis_holds, axis_pairs, resolve_axis
from repro.trees.tree import Tree

__all__ = [
    "ORDERS",
    "PROP_6_6",
    "has_x_property",
    "axis_has_x_property",
    "x_property_table",
    "order_position",
]

#: The three total orders of Section 2, as position-array factories.
ORDERS: dict[str, Callable[[Tree], list[int]]] = {
    "pre": lambda tree: list(range(tree.n)),
    "post": lambda tree: list(tree.post),
    "bflr": lambda tree: list(tree.bflr),
}

#: Proposition 6.6 — the axes claimed to have the X-property per order.
PROP_6_6: dict[str, frozenset[Axis]] = {
    "pre": frozenset({Axis.CHILD_PLUS, Axis.CHILD_STAR}),
    "post": frozenset({Axis.FOLLOWING}),
    "bflr": frozenset(
        {
            Axis.CHILD,
            Axis.NEXT_SIBLING,
            Axis.NEXT_SIBLING_STAR,
            Axis.NEXT_SIBLING_PLUS,
        }
    ),
}


def order_position(tree: Tree, order: str) -> list[int]:
    """position[v] = rank of node v in the named order."""
    try:
        return ORDERS[order](tree)
    except KeyError:
        raise ValueError(f"unknown order {order!r}; use pre/post/bflr") from None


def has_x_property(
    pairs: Iterable[tuple[int, int]],
    position: Sequence[int],
    holds: Callable[[int, int], bool],
) -> bool:
    """Check Definition 6.3 for an explicit relation.

    ``pairs`` enumerates R, ``position`` gives the order, and ``holds``
    answers membership.  Checks all pairs of arcs: O(|R|²).
    """
    arcs = list(pairs)
    for n1, n2 in arcs:
        for n0, n3 in arcs:
            if position[n0] < position[n1] and position[n2] < position[n3]:
                if not holds(n0, n2):
                    return False
    return True


def axis_has_x_property(tree: Tree, axis: "str | Axis", order: str) -> bool:
    """Does the axis relation of ``tree`` have the X-property w.r.t. the
    named order?  (Exhaustive check — meant for small trees.)"""
    axis = resolve_axis(axis)
    position = order_position(tree, order)
    return has_x_property(
        axis_pairs(tree, axis),
        position,
        lambda u, v: axis_holds(tree, axis, u, v),
    )


def x_property_table(
    trees: Iterable[Tree],
    axes: Iterable["str | Axis"] = (
        Axis.CHILD,
        Axis.CHILD_PLUS,
        Axis.CHILD_STAR,
        Axis.NEXT_SIBLING,
        Axis.NEXT_SIBLING_PLUS,
        Axis.NEXT_SIBLING_STAR,
        Axis.FOLLOWING,
    ),
    orders: Iterable[str] = ("pre", "post", "bflr"),
) -> dict[tuple[Axis, str], bool]:
    """Empirical Proposition 6.6: for each (axis, order), True iff the
    X-property held on *every* supplied tree."""
    axes = [resolve_axis(a) for a in axes]
    table = {(axis, order): True for axis in axes for order in orders}
    for tree in trees:
        for axis in axes:
            for order in orders:
                if table[(axis, order)] and not axis_has_x_property(
                    tree, axis, order
                ):
                    table[(axis, order)] = False
    return table
