"""The Dichotomy Theorem 6.8 classifier.

Conjunctive queries over a signature of unary relations plus a set F of
axis relations are in P iff some total order gives every relation in F
the X-property — and by Proposition 6.6 (plus the paper's remark that
6.6 is exhaustive for <pre, <post, <bflr) this holds exactly when F is
contained in one of::

    τ1 = {Child+, Child*}                                  (order <pre)
    τ2 = {Following}                                       (order <post)
    τ3 = {Child, NextSibling, NextSibling*, NextSibling+}  (order <bflr)

(Self is harmless in every class: its arcs never cross.)  Otherwise the
evaluation problem is NP-complete.
"""

from __future__ import annotations

from typing import Iterable

from repro.consistency.xproperty import PROP_6_6
from repro.trees.axes import Axis, resolve_axis

__all__ = [
    "TAU_1",
    "TAU_2",
    "TAU_3",
    "classify_signature",
    "tractable_order",
]

#: τ1, τ2, τ3 of Corollary 6.7.
TAU_1: frozenset[Axis] = PROP_6_6["pre"]
TAU_2: frozenset[Axis] = PROP_6_6["post"]
TAU_3: frozenset[Axis] = PROP_6_6["bflr"]

_HARMLESS: frozenset[Axis] = frozenset({Axis.SELF})

_CANONICAL_OF_INVERSE: dict[Axis, Axis] = {
    Axis.PARENT: Axis.CHILD,
    Axis.ANCESTOR: Axis.CHILD_PLUS,
    Axis.ANCESTOR_OR_SELF: Axis.CHILD_STAR,
    Axis.PREV_SIBLING: Axis.NEXT_SIBLING,
    Axis.PRECEDING_SIBLING: Axis.NEXT_SIBLING_PLUS,
    Axis.PREV_SIBLING_STAR: Axis.NEXT_SIBLING_STAR,
    Axis.PRECEDING: Axis.FOLLOWING,
    Axis.FIRST_CHILD_INV: Axis.FIRST_CHILD,
}


def _canonical(axes: Iterable["str | Axis"]) -> set[Axis]:
    """Fold inverse axes onto their forward versions (a CQ atom over an
    inverse axis is the forward atom with swapped arguments, so the
    classification is invariant under inversion... *except* that the
    X-property is about the relation itself; see note below)."""
    out = set()
    for a in axes:
        axis = resolve_axis(a)
        out.add(_CANONICAL_OF_INVERSE.get(axis, axis))
    return out


def tractable_order(axes: Iterable["str | Axis"]) -> str | None:
    """The order (``"pre"``/``"post"``/``"bflr"``) under which every axis
    in the signature has the X-property, or None if there is none.

    Note the FirstChild special case: FirstChild is a *subset* of Child
    that is functional in both directions, hence X w.r.t. <bflr like
    Child itself.
    """
    axes = _canonical(axes) - _HARMLESS
    if axes <= TAU_1:
        return "pre"
    if axes <= TAU_2:
        return "post"
    if axes <= (TAU_3 | {Axis.FIRST_CHILD}):
        return "bflr"
    return None


def classify_signature(axes: Iterable["str | Axis"]) -> tuple[str, str | None]:
    """Theorem 6.8 verdict for a signature: ``("P", order)`` or
    ``("NP-complete", None)``."""
    order = tractable_order(axes)
    if order is None:
        return ("NP-complete", None)
    return ("P", order)
