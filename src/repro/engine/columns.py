"""The columnar index core: flat integer columns for the hot paths.

Every §2 algorithm in this library is *defined* over the (pre, post,
level) interval encoding, yet the object-path executors still walk
Python ``Tree`` attributes per node.  A :class:`ColumnStore`
materializes the encoding once as flat ``array('i')`` columns (or numpy
arrays under ``REPRO_COLUMNS=numpy``) plus interned label ids with
per-label posting arrays, and the column-native executors below scan
ints instead of objects:

- :meth:`ColumnStore.descendant_semijoin` — the structural join of §2
  specialized to what the XPath spine evaluator actually needs: the set
  of *descendant targets*, not the (ancestor, descendant) pairs.  The
  frontier collapses to maximal disjoint pre-intervals (ancestor
  intervals nest, so a sorted sweep suffices) and each interval slices
  the candidate posting array via binary search — O(|A| + |D| + |out|)
  with no pair materialization at all.
- :meth:`ColumnStore.twig_streams` — arc-consistency-style pruning of
  the per-pattern-node candidate streams before PathStack/TwigStack
  run.  Every pattern edge is relaxed to descendant containment (a
  sound over-approximation: a ``/``-edge match is in particular a
  ``//``-edge match), so no element of a real match is ever dropped,
  while unproductive document regions never reach the stack machinery.
- :func:`evaluate_xpath_automaton_columns` — the two automaton passes
  of :mod:`repro.automata.xpathrun` with ``bytearray`` state vectors
  and parent-array accumulation: processing nodes in reverse pre-order
  ORs each node's state into its parent's accumulator slot, replacing
  the per-node children-list scans.

Feature gating: columns are opt-in per :class:`~repro.engine.database.
Database` (``columns="on"``/``"numpy"``), via the ``REPRO_COLUMNS``
environment variable, or the CLI ``--columns`` flag; ``resolve_mode``
is the single place the three spellings meet.  The numpy fast path is
used only when numpy imports — no new dependency is ever required.

Derived per-label artifacts ((pre, post) pair columns, membership
masks) live in a bounded LRU cache; the interning table itself is
permanent, so label ids stay stable across evictions.
"""

from __future__ import annotations

import os
import threading
from array import array
from bisect import bisect_left, bisect_right
from collections import OrderedDict
from typing import Any, Callable

from repro.errors import QueryError
from repro.faults import faultpoint, register_site
from repro.obs.context import current as _obs_current
from repro.trees.axes import Axis
from repro.trees.tree import Tree

__all__ = [
    "COLUMNS_ENV",
    "ColumnStore",
    "evaluate_xpath_automaton_columns",
    "resolve_mode",
]

#: environment variable selecting the default columns mode
COLUMNS_ENV = "REPRO_COLUMNS"

register_site("columns.build", "ColumnStore construction (interning + columns)")
register_site(
    "columns.semijoin", "columnar interval semi-joins and twig stream pruning"
)

_OFF_SPELLINGS = frozenset({"", "0", "off", "no", "false", "objects", "none"})
_ON_SPELLINGS = frozenset({"1", "on", "yes", "true", "array", "columns"})


def _load_numpy():
    try:
        import numpy
    except Exception:  # pragma: no cover - numpy is optional by design
        return None
    return numpy


def resolve_mode(requested: "str | bool | None" = None) -> str:
    """Normalize a columns request to ``"off"``, ``"array"`` or ``"numpy"``.

    ``None`` defers to the ``REPRO_COLUMNS`` environment variable (so
    the flag can be flipped without touching call sites); ``"numpy"``
    silently degrades to ``"array"`` when numpy is not importable —
    columns never introduce a dependency.
    """
    value = requested
    if value is None:
        value = os.environ.get(COLUMNS_ENV, "")
    if isinstance(value, bool):
        return "array" if value else "off"
    text = str(value).strip().lower()
    if text in _OFF_SPELLINGS:
        return "off"
    if text in _ON_SPELLINGS:
        return "array"
    if text == "numpy":
        return "numpy" if _load_numpy() is not None else "array"
    raise QueryError(
        f"unknown columns mode {requested!r}; options: off, on, numpy"
    )


class ColumnStore:
    """Interned labels + flat int columns for one (immutable) Tree."""

    __slots__ = (
        "tree",
        "n",
        "mode",
        "pre",
        "post",
        "level",
        "parent",
        "subtree_end",
        "label_to_id",
        "id_to_label",
        "postings",
        "derived_cache_size",
        "derived_evictions",
        "_derived",
        "_derived_lock",
        "_np",
    )

    #: bound on the derived-artifact LRU (pair columns + masks per label)
    DERIVED_CACHE_SIZE = 64

    def __init__(
        self,
        tree: Tree,
        mode: str = "array",
        derived_cache_size: int = DERIVED_CACHE_SIZE,
    ):
        faultpoint("columns.build")
        np = _load_numpy() if mode == "numpy" else None
        if mode == "numpy" and np is None:
            mode = "array"
        self.tree = tree
        self.n = tree.n
        self.mode = mode
        self._np = np
        if np is not None:
            self.pre = np.arange(tree.n, dtype=np.int64)
            self.post = np.asarray(tree.post, dtype=np.int64)
            self.level = np.asarray(tree.depth, dtype=np.int64)
            self.parent = np.asarray(tree.parent, dtype=np.int64)
            self.subtree_end = np.asarray(tree.subtree_end, dtype=np.int64)
        else:
            self.pre = array("i", range(tree.n))
            self.post = array("i", tree.post)
            self.level = array("i", tree.depth)
            self.parent = array("i", tree.parent)
            self.subtree_end = array("i", tree.subtree_end)
        # intern labels in first-use (document) order; postings are
        # built by the same increasing-id sweep, so they are sorted
        label_to_id: dict[str, int] = {}
        id_to_label: list[str] = []
        postings: list[array] = []
        for v in range(tree.n):
            for label in tree.labels[v]:
                lid = label_to_id.get(label)
                if lid is None:
                    lid = len(id_to_label)
                    label_to_id[label] = lid
                    id_to_label.append(label)
                    postings.append(array("i"))
                postings[lid].append(v)
        if np is not None:
            postings = [np.asarray(p, dtype=np.int64) for p in postings]
        self.label_to_id = label_to_id
        self.id_to_label = id_to_label
        self.postings = postings
        self.derived_cache_size = max(1, int(derived_cache_size))
        self.derived_evictions = 0
        self._derived: "OrderedDict[tuple, Any]" = OrderedDict()
        self._derived_lock = threading.Lock()
        ctx = _obs_current()
        if ctx is not None:
            ctx.count("index.columns_built")

    # -- interning ---------------------------------------------------------

    def label_id(self, label: str) -> int:
        """The interned id of ``label``, or -1 when absent."""
        return self.label_to_id.get(label, -1)

    def label_of(self, lid: int) -> str:
        return self.id_to_label[lid]

    def labels(self) -> "frozenset[str]":
        return frozenset(self.label_to_id)

    def posting(self, label: str):
        """The sorted node-id posting array of ``label`` (empty if absent)."""
        lid = self.label_to_id.get(label)
        if lid is None:
            return self._empty()
        return self.postings[lid]

    def _empty(self):
        if self._np is not None:
            return self._np.empty(0, dtype=self._np.int64)
        return array("i")

    # -- derived artifacts (bounded LRU) -----------------------------------

    def _derived_get(self, key: tuple, build: Callable[[], Any]) -> Any:
        # the LRU is shared across query threads; holding the lock over
        # build() keeps each artifact built exactly once and the
        # OrderedDict reordering/eviction consistent.  Builds are cheap
        # (one pass over a label's posting array), so this is not a
        # contention point — concurrent queries touching *different*
        # labels serialize only for that pass.
        with self._derived_lock:
            entry = self._derived.get(key)
            if entry is not None:
                self._derived.move_to_end(key)
                return entry
            entry = build()
            self._derived[key] = entry
            while len(self._derived) > self.derived_cache_size:
                self._derived.popitem(last=False)
                self.derived_evictions += 1
            return entry

    def derived_cached(self) -> int:
        """Current derived-cache occupancy (tests and introspection)."""
        return len(self._derived)

    def label_pairs(self, label: str):
        """The (pre, post) columns of a label partition, LRU-cached."""

        def build():
            nodes = self.posting(label)
            if self._np is not None:
                return nodes, self.post[nodes]
            post = self.post
            return nodes, array("i", [post[v] for v in nodes])

        return self._derived_get(("pairs", label), build)

    def mask(self, label: str) -> bytearray:
        """A per-node membership bytearray for ``label``, LRU-cached."""

        def build():
            m = bytearray(self.n)
            for v in self.posting(label):
                m[v] = 1
            return m

        return self._derived_get(("mask", label), build)

    # -- column-native joins -----------------------------------------------

    def descendant_semijoin(self, frontier, candidates) -> list[int]:
        """Sorted ids from ``candidates`` that are proper descendants of
        some node in ``frontier`` (both sorted by pre id).

        Ancestor intervals nest, so collapsing the frontier to maximal
        disjoint intervals is one sweep; each interval then slices the
        candidate posting array with two binary searches.  Unlike the
        pair-producing structural join this never materializes
        (ancestor, descendant) pairs — output is at most |candidates|.
        """
        faultpoint("columns.semijoin")
        out: list[int] = []
        end = self.subtree_end
        np = self._np
        use_np = np is not None and isinstance(candidates, np.ndarray)
        cur_end = -1
        for u in frontier:
            if u < cur_end:
                continue  # nested inside the previous maximal interval
            cur_end = end[u]
            if use_np:
                lo = int(np.searchsorted(candidates, u, side="right"))
                hi = int(np.searchsorted(candidates, cur_end, side="left"))
                if hi > lo:
                    out.extend(candidates[lo:hi].tolist())
            else:
                lo = bisect_right(candidates, u)
                hi = bisect_left(candidates, cur_end, lo)
                if hi > lo:
                    out.extend(candidates[lo:hi])
        return out

    def child_semijoin(self, frontier, candidates) -> list[int]:
        """Sorted ids from ``candidates`` whose parent is in ``frontier``."""
        faultpoint("columns.semijoin")
        parent = self.parent
        members = set(frontier)
        return [int(c) for c in candidates if parent[c] in members]

    def twig_streams(self, pattern) -> list[list[int]]:
        """Pruned per-pattern-node candidate streams (document order).

        Drop-in for :meth:`DocumentIndex.twig_streams`: the returned
        lists feed PathStack/TwigStack/binary plans unchanged.  Both
        passes relax every edge to descendant containment, which keeps
        a superset of the elements participating in any real match —
        sound for ``/`` edges too, since a child is a descendant.
        """
        faultpoint("columns.semijoin")
        n = self.n
        end = self.subtree_end
        streams: list[list[int]] = []
        for node in pattern.nodes:
            if node.label == "*":
                streams.append(list(range(n)))
            else:
                streams.append([int(v) for v in self.posting(node.label)])
        order = pattern.nodes
        # bottom-up: keep elements with a surviving candidate below every
        # child (pattern nodes are pre-order indexed: children come later)
        for qi in range(len(order) - 1, -1, -1):
            for child in order[qi].children:
                cs = streams[child.index]
                kept = []
                for e in streams[qi]:
                    lo = bisect_right(cs, e)
                    if lo < len(cs) and cs[lo] < end[e]:
                        kept.append(e)
                streams[qi] = kept
        # top-down: keep elements inside some surviving parent interval —
        # a merge sweep with a stack of open (nested) ancestor intervals
        for qi in range(1, len(order)):
            parents = streams[pattern.parent[qi]]
            kept = []
            open_ends: list[int] = []
            pi = 0
            np_ = len(parents)
            for e in streams[qi]:
                while pi < np_ and parents[pi] < e:
                    a = parents[pi]
                    pi += 1
                    while open_ends and open_ends[-1] <= a:
                        open_ends.pop()
                    open_ends.append(end[a])
                while open_ends and open_ends[-1] <= e:
                    open_ends.pop()
                if open_ends:
                    kept.append(e)
            streams[qi] = kept
        return streams


# ---------------------------------------------------------------------------
# the columnar downward-XPath automaton
# ---------------------------------------------------------------------------


class _ColPath:
    """Bytearray automaton state for one qualifier path (steps 0..k-1).

    The columnar twin of :class:`repro.automata.xpathrun._DownPath`:
    the OK/S/R bit-vectors become bytearrays, and the per-node
    children-list scans become parent-array accumulation — when node v
    is processed (reverse pre-order, children first), its S/OK bits are
    ORed into ``aggS``/``aggOK`` at ``parent[v]``, so by the time the
    parent is processed its accumulator slots already hold the
    disjunction over all children.
    """

    __slots__ = ("axes", "quals", "k", "OK", "S", "R", "aggOK", "aggS")

    def __init__(self, expr, store: ColumnStore, registry: "list[_ColPath]"):
        from repro.xpath.ast import steps_of

        steps = steps_of(expr)
        # compiling the qualifiers first appends nested paths to the
        # registry before this one, so the sweep updates inner before outer
        self.quals = [
            [_compile_qual_columns(q, store, registry) for q in s.qualifiers]
            for s in steps
        ]
        self.axes = [s.axis for s in steps]
        n = store.n
        k = len(steps)
        self.k = k
        self.OK = [bytearray(n) for _ in range(k)]
        self.S = [bytearray(n) for _ in range(k)]
        self.R = [bytearray(n) for _ in range(k)]
        self.aggOK = [bytearray(n) for _ in range(k)]
        self.aggS = [bytearray(n) for _ in range(k)]

    def update(self, v: int, p: int) -> None:
        """Transition at ``v``; children already accumulated into agg*."""
        k = self.k
        for i in range(k - 1, -1, -1):
            ok = 1
            for q in self.quals[i]:
                if not q(v):
                    ok = 0
                    break
            if ok and i + 1 < k and not self.R[i + 1][v]:
                ok = 0
            self.OK[i][v] = ok
            s = 1 if (ok or self.aggS[i][v]) else 0
            self.S[i][v] = s
            axis = self.axes[i]
            if axis is Axis.CHILD:
                r = self.aggOK[i][v]
            elif axis is Axis.CHILD_PLUS:
                r = self.aggS[i][v]
            elif axis is Axis.CHILD_STAR:
                r = s
            else:  # Self
                r = ok
            self.R[i][v] = 1 if r else 0
            if p >= 0:
                if s:
                    self.aggS[i][p] = 1
                if ok:
                    self.aggOK[i][p] = 1


def _compile_qual_columns(
    q, store: ColumnStore, registry: "list[_ColPath]"
) -> Callable[[int], bool]:
    """A per-node boolean view of one qualifier over the column state."""
    from repro.xpath.ast import AndQual, LabelTest, NotQual, OrQual, PathQualifier

    if isinstance(q, LabelTest):
        m = store.mask(q.label)
        return lambda v: m[v]
    if isinstance(q, AndQual):
        left = _compile_qual_columns(q.left, store, registry)
        right = _compile_qual_columns(q.right, store, registry)
        return lambda v: left(v) and right(v)
    if isinstance(q, OrQual):
        left = _compile_qual_columns(q.left, store, registry)
        right = _compile_qual_columns(q.right, store, registry)
        return lambda v: left(v) or right(v)
    if isinstance(q, NotQual):
        inner = _compile_qual_columns(q.operand, store, registry)
        return lambda v: not inner(v)
    if isinstance(q, PathQualifier):
        down = _ColPath(q.path, store, registry)
        registry.append(down)
        reach = down.R[0]
        return lambda v: reach[v]
    raise QueryError(
        "position() predicates are outside the downward automaton fragment"
    )


def evaluate_xpath_automaton_columns(expr, store: ColumnStore) -> set[int]:
    """[[expr]](root) for downward Core XPath over flat columns.

    Observationally identical to
    :func:`repro.automata.xpathrun.evaluate_xpath_automaton` — same
    fragment check, same two passes — but the per-node state lives in
    bytearrays and the bottom-up pass aggregates through the parent
    column instead of iterating children lists.
    """
    from repro.automata.xpathrun import is_downward
    from repro.xpath.ast import steps_of

    if not is_downward(expr):
        raise QueryError(
            "the automaton evaluator covers the downward fragment only "
            "(axes Self/Child/Child+/Child*, no position())"
        )
    ctx = _obs_current()
    n = store.n
    parent = store.parent
    registry: list[_ColPath] = []
    spine = steps_of(expr)
    spine_quals = [
        [_compile_qual_columns(q, store, registry) for q in s.qualifiers]
        for s in spine
    ]

    # pass 1: bottom-up automaton run (children have larger pre ids)
    for v in range(n - 1, -1, -1):
        p = parent[v]
        for down in registry:
            down.update(v, p)

    if ctx is not None:
        ctx.count("automaton.passes", 2)
        ctx.tick(n * max(len(registry), 1))
        ctx.tick(n)

    # pass 2: top-down context pass through the spine
    m = len(spine)
    F = [bytearray(n) for _ in range(m + 1)]
    A = [bytearray(n) for _ in range(m + 1)]
    root = store.tree.root
    answer: set[int] = set()
    Fm = F[m]
    for v in range(n):
        p = parent[v]
        F[0][v] = 1 if v == root else 0
        for j in range(1, m + 1):
            axis = spine[j - 1].axis
            anc = 1 if (p >= 0 and (F[j - 1][p] or A[j][p])) else 0
            A[j][v] = anc
            qual_ok = all(q(v) for q in spine_quals[j - 1])
            if axis is Axis.CHILD:
                f = p >= 0 and F[j - 1][p] and qual_ok
            elif axis is Axis.CHILD_PLUS:
                f = anc and qual_ok
            elif axis is Axis.CHILD_STAR:
                f = (F[j - 1][v] or anc) and qual_ok
            else:  # Self
                f = F[j - 1][v] and qual_ok
            F[j][v] = 1 if f else 0
        if Fm[v]:
            answer.add(v)
    return answer
