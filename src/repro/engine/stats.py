"""Execution accounting for the unified engine.

Every query answered through :class:`repro.engine.Database` returns a
:class:`Result` carrying the answer *and* an :class:`ExecutionStats`
record: which strategy ran, why the planner chose it, how long it took,
and how the cached :class:`~repro.engine.index.DocumentIndex` was used.
The index counters are what make cache behaviour observable —
``index_built`` is True only for the call that constructed the index,
and ``index_hits`` counts index consultations served during the call,
so a repeated query on the same document shows ``index_built=False``
with ``index_hits > 0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.obs.tracer import Span

__all__ = ["Attempt", "ExecutionStats", "Result"]


@dataclass(frozen=True)
class Attempt:
    """One supervised execution attempt (docs/ROBUSTNESS.md).

    ``stage`` is the strategy name, or ``"(setup)"`` for failures during
    parse/index-build/planning.  ``outcome`` is one of ``"ok"``,
    ``"transient"`` (retryable failure), ``"error"`` (hard failure) or
    ``"budget"`` (:class:`~repro.errors.ResourceBudgetExceeded`).
    """

    strategy: str
    outcome: str  # "ok" | "transient" | "error" | "budget"
    error: "str | None" = None
    elapsed_s: float = 0.0
    #: the request trace id active when the attempt ran (service path)
    trace_id: "str | None" = None

    def __str__(self) -> str:
        detail = f": {self.error}" if self.error else ""
        return f"{self.strategy}[{self.outcome}]{detail}"


@dataclass(frozen=True)
class ExecutionStats:
    """One engine call, fully accounted.

    The last three fields exist only for *observed* calls (tracing or a
    resource budget active — see :mod:`repro.obs`): ``counters`` holds
    the flat counter totals of the call, ``trace`` the root of the span
    tree when tracing was on, and ``fallback_from`` the strategies the
    planner abandoned after a :class:`~repro.errors.ResourceBudgetExceeded`
    before the reported one answered.
    """

    kind: str  # "xpath" | "twig" | "cq" | "datalog"
    query: str  # concrete syntax of the query
    strategy: str  # registry name of the strategy that ran
    reason: str  # planner justification (or "explicitly requested")
    elapsed_s: float  # wall time of the execution proper
    answer_size: int
    index_built: bool  # this call constructed the DocumentIndex
    index_hits: int  # index consultations during this call
    nodes_streamed: int  # nodes handed out of index partitions
    counters: "dict[str, int] | None" = None  # flat totals (observed calls)
    trace: "Span | None" = None  # span tree root (traced calls)
    fallback_from: tuple[str, ...] = ()  # strategies downgraded away from
    #: supervised calls only: every attempt in execution order,
    #: including retries of transients and abandoned strategies
    attempts: "tuple[Attempt, ...]" = ()
    #: injection sites that tripped during this call (armed FaultPlan)
    faults: tuple[str, ...] = ()
    #: True when ``on_error="partial"`` degraded the call to an empty
    #: answer after every strategy failed
    degraded: bool = False
    #: the request trace id this call executed under, when one was
    #: active (set by the service middleware; None for direct calls)
    trace_id: "str | None" = None

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_s * 1e3

    @property
    def retry_count(self) -> int:
        """Transient re-attempts performed during this call."""
        return sum(1 for a in self.attempts if a.outcome == "transient")

    def counter(self, name: str) -> int:
        """A counter total, 0 when absent or the call was unobserved."""
        if not self.counters:
            return 0
        return self.counters.get(name, 0)

    def summary(self) -> str:
        built = " built-index" if self.index_built else ""
        fallback = (
            f", fell back from {'+'.join(self.fallback_from)}"
            if self.fallback_from
            else ""
        )
        extras = ""
        if len(self.attempts) > 1:
            extras += f", {len(self.attempts)} attempts"
        if self.faults:
            extras += f", faults: {'+'.join(self.faults)}"
        if self.degraded:
            extras += ", DEGRADED (partial result)"
        return (
            f"{self.kind}[{self.strategy}] {self.elapsed_ms:.2f} ms, "
            f"{self.answer_size} answers, {self.index_hits} index hits"
            f"{built}{fallback}{extras}"
        )


@dataclass(frozen=True)
class Result:
    """An answer set plus the stats of the call that produced it.

    Iterates (and measures) like the underlying answer, so existing
    code that expects a plain set keeps working on ``result.answer``.
    """

    answer: Any  # set[int] for unary queries, set[tuple[int, ...]] otherwise
    stats: ExecutionStats

    def __iter__(self) -> Iterator:
        return iter(self.answer)

    def __len__(self) -> int:
        return len(self.answer)

    def __contains__(self, item: object) -> bool:
        return item in self.answer
