"""The strategy planner: inspect a parsed query, pick an evaluation route.

The planner encodes the paper's cost picture as explicit, documented
rules (see docs/ENGINE.md for the full rationale).  It only ever
returns names from :mod:`repro.engine.strategies`, and both the library
facade and the CLI go through it — so there is exactly one place where
"which algorithm runs by default" is decided.

Heuristics, in order:

**Core XPath**

1. ``position()`` present → ``denotational`` (the only route that
   implements positional predicates).
2. Label-only downward spine whose label partitions are either empty
   (the answer is trivially empty — joins short-circuit) or small
   relative to the document → ``structural-join``: each step touches
   only the label streams, not the whole tree.
3. Downward fragment with nested path qualifiers → ``automaton``: one
   bottom-up pass computes every nested predicate simultaneously
   instead of materializing a node set per sub-path.
4. Otherwise → ``linear``, the O(|Q|·||A||) context-set evaluator.

**Twig patterns**

1. Some referenced label absent from the document → ``binary`` (the
   first empty stream empties the plan immediately).
2. ≤ 2 pattern nodes → ``binary`` (a single structural join is optimal;
   holistic stacks only pay off on real twigs).
3. Path pattern (no branching) → ``pathstack``.
4. Otherwise → ``twigstack``.

**Conjunctive queries**

1. Acyclic → ``yannakakis`` (O(||A||·|Q|) for Boolean/unary heads).
2. Tree-width ≤ 2 → ``treewidth`` (Theorem 4.1's DP stays polynomial
   with a small exponent).
3. Otherwise → ``backtracking``.

**Datalog** — always ``minoux`` (the linear TMNF → Horn-SAT pipeline).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.errors import QueryError
from repro.faults import faultpoint, register_site
from repro.engine.strategies import get_strategy, sj_spec, xpath_labels
from repro.obs.context import current as _obs_current

__all__ = ["Plan", "PlanCache", "Planner"]

register_site("planner.plan", "strategy selection for one query")
register_site("planner.cache", "compiled-plan cache lookup")


@dataclass(frozen=True)
class Plan:
    """A chosen strategy plus the reason it was chosen."""

    kind: str
    strategy: str
    reason: str


class PlanCache:
    """A bounded LRU of compiled plans, keyed by (kind, normalized query
    shape, document fingerprint).

    The shape key is ``str(parsed_query)`` — every parsed query kind
    renders canonically, and two queries with equal text have equal
    plans.  The fingerprint ties the entry to the document *contents*
    (via :meth:`DocumentIndex.fingerprint`), so a mutated-and-reindexed
    document misses rather than reusing a stale selectivity decision.
    A stale hit under fingerprint collision is still *safe*: every
    applicability gate depends only on the query, so a cached plan can
    be suboptimal, never wrong.

    The cache is shared by every thread querying through one
    :class:`~repro.engine.database.Database`, so all LRU state — the
    ordered dict, the hit/miss/eviction counters — mutates under one
    lock.  ``move_to_end`` on a concurrently popped key, or two
    interleaved evictions, would otherwise corrupt the OrderedDict
    (pinned by ``tests/test_concurrency.py``).  Two threads missing the
    same key can still both plan and both store; the second store is an
    idempotent overwrite (plans for equal keys are equal), never a
    duplicate entry.
    """

    __slots__ = ("maxsize", "hits", "misses", "evictions", "_entries", "_lock")

    def __init__(self, maxsize: int = 128):
        self.maxsize = max(0, int(maxsize))
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[tuple, Plan]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple) -> "Plan | None":
        faultpoint("planner.cache")
        # counters go through the per-call Observation (merged into
        # global METRICS by the supervised path); the unobserved fast
        # path must never touch METRICS directly
        ctx = _obs_current()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
        if entry is not None:
            if ctx is not None:
                ctx.count("planner.cache_hits")
            return entry
        if ctx is not None:
            ctx.count("planner.cache_misses")
        return None

    def store(self, key: tuple, plan: Plan) -> None:
        if self.maxsize == 0:
            return
        ctx = _obs_current()
        evicted = 0
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if ctx is not None and evicted:
            ctx.count("planner.cache_evictions", evicted)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def info(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class Planner:
    """Maps (kind, parsed query, index) to a :class:`Plan`."""

    #: structural joins are preferred while the touched label streams sum
    #: to at most this fraction of the document
    SELECTIVITY_FRACTION = 0.5

    #: tree-width cutoff for the bounded-tree-width CQ route
    TREEWIDTH_CUTOFF = 2

    #: default plan-cache capacity (0 disables caching)
    PLAN_CACHE_SIZE = 128

    def __init__(self, plan_cache_size: "int | None" = None):
        if plan_cache_size is None:
            plan_cache_size = self.PLAN_CACHE_SIZE
        self.cache = PlanCache(plan_cache_size)

    def plan(self, kind: str, query: Any, index: Any) -> Plan:
        faultpoint("planner.plan")
        fingerprint = getattr(index, "fingerprint", None)
        key = None
        if self.cache.maxsize and fingerprint is not None:
            key = (kind, str(query), fingerprint)
            cached = self.cache.lookup(key)
            if cached is not None:
                return cached
        plan = self._plan_uncached(kind, query, index)
        if key is not None:
            self.cache.store(key, plan)
        return plan

    def _plan_uncached(self, kind: str, query: Any, index: Any) -> Plan:
        if kind == "xpath":
            return self._plan_xpath(query, index)
        if kind == "twig":
            return self._plan_twig(query, index)
        if kind == "cq":
            return self._plan_cq(query, index)
        if kind == "datalog":
            return Plan("datalog", "minoux", "TMNF → Horn-SAT → Minoux pipeline")
        raise QueryError(f"unknown query kind {kind!r}")

    # -- per-kind rules ----------------------------------------------------

    def _plan_xpath(self, expr: Any, index: Any) -> Plan:
        from repro.automata.xpathrun import is_downward
        from repro.xpath.ast import PathQualifier, walk_expr
        from repro.engine.strategies import _has_position

        if _has_position(expr):
            return Plan(
                "xpath",
                "denotational",
                "position() needs the memoized denotational evaluator",
            )
        if sj_spec(expr) is not None:
            sizes = [index.label_count(label) for label in xpath_labels(expr)]
            if any(size == 0 for size in sizes):
                return Plan(
                    "xpath",
                    "structural-join",
                    "a referenced label is absent; the join plan "
                    "short-circuits to the empty answer",
                )
            if sizes and sum(sizes) <= self.SELECTIVITY_FRACTION * index.n:
                return Plan(
                    "xpath",
                    "structural-join",
                    "label partitions are selective "
                    f"({sum(sizes)}/{index.n} nodes touched)",
                )
        if is_downward(expr) and any(
            isinstance(node, PathQualifier) for node in walk_expr(expr)
        ):
            return Plan(
                "xpath",
                "automaton",
                "downward query with nested path qualifiers: one "
                "bottom-up pass computes all of them",
            )
        return Plan(
            "xpath", "linear", "general query: O(|Q|·||A||) context-set evaluator"
        )

    def _plan_twig(self, pattern: Any, index: Any) -> Plan:
        labels = [n.label for n in pattern.nodes if n.label != "*"]
        if any(index.label_count(label) == 0 for label in labels):
            return Plan(
                "twig",
                "binary",
                "a pattern label is absent; the first empty stream "
                "empties the join plan",
            )
        # NOTE: this check must precede the path-pattern rule — every
        # ≤ 2-node pattern is also a path, so the old ordering made the
        # single-join rule unreachable (pinned by test_planner_reasons).
        if len(pattern) <= 2:
            return Plan(
                "twig", "binary", "≤ 2 pattern nodes: a single structural join"
            )
        if all(len(node.children) <= 1 for node in pattern.nodes):
            return Plan("twig", "pathstack", "path pattern: PathStack suffices")
        return Plan(
            "twig", "twigstack", "branching twig: holistic TwigStack bounds "
            "intermediate state by document depth"
        )

    def _plan_cq(self, query: Any, index: Any) -> Plan:
        from repro.cq.acyclic import is_acyclic
        from repro.cq.treewidth import query_treewidth

        if is_acyclic(query):
            return Plan(
                "cq", "yannakakis", "acyclic query: Yannakakis is O(||A||·|Q|)"
            )
        width = query_treewidth(query)
        if width <= self.TREEWIDTH_CUTOFF:
            return Plan(
                "cq",
                "treewidth",
                f"cyclic query of tree-width {width}: Theorem 4.1 DP",
            )
        return Plan(
            "cq",
            "backtracking",
            f"tree-width {width} exceeds the DP cutoff; falling back "
            "to backtracking search",
        )

    # -- budget-fallback ranking ------------------------------------------

    def ranked(self, kind: str, query: Any, index: Any) -> list[Plan]:
        """The chosen plan followed by every other applicable strategy.

        The resource-governed execution path walks this list: when an
        attempt raises :class:`~repro.errors.ResourceBudgetExceeded`,
        the engine downgrades to the next entry (registry order — the
        registry lists each kind's routes from cheap/specialized to
        general) and records the abandoned strategy in
        ``ExecutionStats.fallback_from``.
        """
        from repro.engine.strategies import strategies_for

        chosen = self.plan(kind, query, index)
        plans = [chosen]
        for definition in strategies_for(kind, query, index):
            if definition.name != chosen.strategy:
                plans.append(
                    Plan(
                        kind,
                        definition.name,
                        f"budget fallback after {chosen.strategy!r} "
                        "(registry order)",
                    )
                )
        return plans

    # -- explicit strategy requests ---------------------------------------

    def validate(self, kind: str, strategy: str, query: Any, index: Any) -> Plan:
        """A plan for an explicitly requested strategy (checked)."""
        faultpoint("planner.plan")
        definition = get_strategy(kind, strategy)
        if not definition.applicable(query, index):
            raise QueryError(
                f"strategy {strategy!r} is not applicable to this "
                f"{kind} query ({definition.summary})"
            )
        return Plan(kind, strategy, "explicitly requested")
