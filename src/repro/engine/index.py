"""The cached per-document index every strategy shares.

A :class:`DocumentIndex` materializes, once per document:

- the three order arrays of §2 — ``pre`` (identity, ids are pre-order
  positions), ``post`` and ``level`` — exactly what
  :mod:`repro.trees.orders` would recompute per call,
- the **label partition**: label → sorted list of node ids (document
  order), the input relation of structural joins, twig streams and
  datalog label predicates,
- derived ``(pre, post)`` streams per label for the §2 interval
  algorithms, built lazily per label and cached,
- axis-relation accessors (descendant/child joins over two label
  partitions) backed by :mod:`repro.storage.structural_join`.

The partition dict is installed as the wrapped Tree's internal label
cache, so *every* evaluator in the library — including ones called
directly, not through the facade — reads the same materialized lists
instead of rebuilding them.

``hits`` / ``nodes_streamed`` count accessor traffic; the
:class:`~repro.engine.database.Database` snapshots them around each
call to report per-query index usage in
:class:`~repro.engine.stats.ExecutionStats`.
"""

from __future__ import annotations

from repro.faults import faultpoint, register_site
from repro.obs.context import current as _obs_current
from repro.storage.structural_join import stack_structural_join
from repro.trees.tree import Tree

__all__ = ["DocumentIndex"]

register_site("index.build", "DocumentIndex construction (orders + partitions)")


class DocumentIndex:
    """Pre/post/level arrays + label partitions for one (immutable) Tree."""

    __slots__ = (
        "tree",
        "n",
        "pre",
        "post",
        "level",
        "label_partition",
        "_pair_streams",
        "hits",
        "nodes_streamed",
        "columns_mode",
        "_columns",
        "_fingerprint",
    )

    def __init__(self, tree: Tree, columns: "str | bool | None" = None):
        faultpoint("index.build")
        from repro.engine.columns import resolve_mode

        self.columns_mode = resolve_mode(columns)
        self._columns = None
        self._fingerprint = None
        self.tree = tree
        self.n = tree.n
        self.pre = list(range(tree.n))
        self.post = list(tree.post)
        self.level = list(tree.depth)
        partition: dict[str, list[int]] = {}
        for v in range(tree.n):
            for label in tree.labels[v]:
                partition.setdefault(label, []).append(v)
        # node ids are visited in increasing order, so every list is
        # already sorted in document order
        self.label_partition = partition
        # share with the Tree's lazy cache: evaluators that call
        # tree.nodes_with_label() now read this very index
        tree._label_index = partition
        self._pair_streams: dict[str, list[tuple[int, int]]] = {}
        self.hits = 0
        self.nodes_streamed = 0
        ctx = _obs_current()
        if ctx is not None:
            ctx.count("index.nodes_indexed", tree.n)
            ctx.count("index.labels_indexed", len(partition))

    # -- columnar view / identity -----------------------------------------

    @property
    def columns(self):
        """The lazily built :class:`~repro.engine.columns.ColumnStore`
        when columns are enabled for this index, else ``None``."""
        if self.columns_mode == "off":
            return None
        if self._columns is None:
            from repro.engine.columns import ColumnStore

            self._columns = ColumnStore(self.tree, mode=self.columns_mode)
        return self._columns

    @property
    def fingerprint(self) -> int:
        """A structural fingerprint of the indexed document, computed
        once — the document half of the planner's plan-cache key."""
        if self._fingerprint is None:
            self._fingerprint = hash(self.tree)
        return self._fingerprint

    # -- label partition accessors ----------------------------------------

    def labels(self) -> "frozenset[str]":
        return frozenset(self.label_partition)

    def label_count(self, label: str) -> int:
        """Partition size without streaming the nodes (planner use)."""
        self.hits += 1
        return len(self.label_partition.get(label, ()))

    def nodes_with_label(self, label: str) -> list[int]:
        """All nodes carrying ``label``, sorted in document order."""
        self.hits += 1
        nodes = self.label_partition.get(label, [])
        self.nodes_streamed += len(nodes)
        return nodes

    def label_pairs(self, label: str) -> list[tuple[int, int]]:
        """The ``(pre, post)`` stream of a label, for interval joins."""
        self.hits += 1
        stream = self._pair_streams.get(label)
        if stream is None:
            post = self.tree.post
            stream = [(v, post[v]) for v in self.label_partition.get(label, ())]
            self._pair_streams[label] = stream
        self.nodes_streamed += len(stream)
        return stream

    def twig_streams(self, pattern) -> list[list[int]]:
        """Per twig-pattern node, its candidate stream in document order
        (``*`` streams the whole document)."""
        streams: list[list[int]] = []
        for node in pattern.nodes:
            if node.label == "*":
                self.hits += 1
                self.nodes_streamed += self.n
                streams.append(list(range(self.n)))
            else:
                streams.append(self.nodes_with_label(node.label))
        return streams

    # -- axis-relation accessors ------------------------------------------

    def descendant_pairs(self, anc_label: str, desc_label: str) -> list[tuple[int, int]]:
        """All (u, v) with Child+(u, v), u labeled ``anc_label`` and v
        labeled ``desc_label`` — one stack-based structural join over the
        two label streams."""
        joined = stack_structural_join(
            self.label_pairs(anc_label), self.label_pairs(desc_label)
        )
        return [(a[0], d[0]) for a, d in joined]

    def child_pairs(self, parent_label: str, child_label: str) -> list[tuple[int, int]]:
        """All (u, v) with Child(u, v) between the two label partitions."""
        parents = set(self.nodes_with_label(parent_label))
        parent = self.tree.parent
        children = self.nodes_with_label(child_label)
        ctx = _obs_current()
        if ctx is not None:
            ctx.tick(len(parents) + len(children))
        return [(parent[c], c) for c in children if parent[c] in parents]
