"""The unified front door: one document, one cached index, one planner.

:class:`Database` wraps a :class:`~repro.trees.tree.Tree` and gives
every query language in the library a single entry point::

    from repro.engine import Database

    db = Database.from_xml("<a><b/><c/></a>")
    result = db.xpath("Child*[lab() = b]")       # planner picks a strategy
    result.answer                                 # {1}
    result.stats.strategy                         # e.g. "structural-join"
    result.stats.index_built                      # True on the first query
    db.xpath("Child*[lab() = b]").stats.index_built   # False: index reused

The :class:`~repro.engine.index.DocumentIndex` is built lazily on the
first query and reused by every subsequent one — that amortization is
the engine's hot path.  Edits go through the same facade
(:meth:`insert_leaf` etc.); they delegate to :mod:`repro.trees.edit`
and invalidate the cached index, so a stale index can never serve a
mutated document.

Every query entry point also accepts the observability/governance
keywords (docs/OBSERVABILITY.md)::

    db.xpath(q, trace=True)              # stats.trace = span tree
    db.xpath(q, deadline=0.05)           # 50 ms per evaluation attempt
    db.xpath(q, max_visited=10_000)      # node-visit ceiling per attempt

and the supervision keywords (docs/ROBUSTNESS.md)::

    db.xpath(q, retries=2)               # re-attempt TransientErrors
    db.xpath(q, on_error="fallback")     # failed strategy -> next one
    db.xpath(q, on_error="partial")      # never raise: degrade to empty

Budgeted auto-planned queries fall back to the next applicable strategy
when an attempt exceeds its budget; the abandoned strategies are listed
in ``stats.fallback_from``.  Under ``on_error="fallback"`` *any*
failing strategy is blacklisted for the call and the next applicable
one runs — the paper's redundancy of evaluation algorithms (Section 7)
turned into fault tolerance.  Every attempt (including retries) is
recorded in ``stats.attempts``, and injection sites tripped by an armed
:class:`repro.faults.FaultPlan` land in ``stats.faults``.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.errors import (
    AllStrategiesFailedError,
    ParseError,
    QueryError,
    ResourceBudgetExceeded,
    StorageError,
    TransientError,
)
from repro.faults import active_plan, faultpoint, register_site
from repro.obs.budget import ResourceBudget
from repro.obs.context import Observation, current, observed
from repro.obs.metrics import METRICS
from repro.obs.tracer import Tracer
from repro.trees.tree import Tree
from repro.engine.index import DocumentIndex
from repro.engine.planner import Plan, Planner
from repro.engine.stats import Attempt, ExecutionStats, Result
from repro.engine.strategies import get_strategy, strategies_for

__all__ = ["Database", "evaluate_document"]

register_site("query.parse", "concrete query syntax -> AST parsing")

#: degradation policies accepted by the ``on_error`` keyword
ON_ERROR_POLICIES = ("raise", "fallback", "partial")


class Database:
    """A queryable document: Tree + cached DocumentIndex + Planner."""

    def __init__(
        self,
        tree: Tree,
        planner: "Planner | None" = None,
        columns: "str | bool | None" = None,
        plan_cache: "int | None" = None,
    ):
        self._tree = tree
        if planner is None:
            planner = Planner(plan_cache_size=plan_cache)
        self._planner = planner
        self._columns = columns
        self._index: "DocumentIndex | None" = None
        # guards lazy index construction only: queries are safe to run
        # from many threads against one Database (the service does), but
        # *edits* are not — they swap the tree and drop the index, and
        # must not race in-flight queries (see docs/SERVICE.md)
        self._index_lock = threading.Lock()
        self._parse_cache: dict[tuple, Any] = {}
        #: ExecutionStats of every call, in order — the query log.
        self.history: list[ExecutionStats] = []

    # -- construction ------------------------------------------------------

    @classmethod
    def from_xml(
        cls,
        text: str,
        attributes_as_labels: bool = False,
        recover: bool = False,
        columns: "str | bool | None" = None,
        plan_cache: "int | None" = None,
    ) -> "Database":
        from repro.trees.xmlio import parse_xml

        return cls(
            parse_xml(
                text, attributes_as_labels=attributes_as_labels, recover=recover
            ),
            columns=columns,
            plan_cache=plan_cache,
        )

    @classmethod
    def from_file(
        cls,
        path: str,
        attributes_as_labels: bool = False,
        recover: bool = False,
        columns: "str | bool | None" = None,
        plan_cache: "int | None" = None,
    ) -> "Database":
        """Load an ``.xml`` document or an ``.rtre`` binary store.

        I/O failures never escape raw: a missing or unreadable file is a
        :class:`~repro.errors.StorageError` and an undecodable one a
        :class:`~repro.errors.ParseError`, both naming the path.  The
        text read is a ``disk.read`` fault-injection site.
        """
        if path.endswith(".rtre"):
            from repro.storage.diskstore import load_tree

            return cls(load_tree(path), columns=columns, plan_cache=plan_cache)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except UnicodeDecodeError as exc:
            raise ParseError(f"document {path!r} is not valid UTF-8: {exc}") from exc
        except OSError as exc:
            raise StorageError(f"cannot read document {path!r}: {exc}") from exc
        text = faultpoint("disk.read", text, mutator=_truncate_text)
        return cls.from_xml(
            text, attributes_as_labels, recover=recover,
            columns=columns, plan_cache=plan_cache,
        )

    # -- document and index access ----------------------------------------

    @property
    def tree(self) -> Tree:
        return self._tree

    @property
    def index(self) -> DocumentIndex:
        """The document index, built on first access and then cached.

        Double-checked locking keeps the construction single: with many
        threads racing the first query, exactly one builds the index and
        the rest block briefly, instead of every thread paying the
        (linear, but large-document-sized) build.
        """
        index = self._index
        if index is None:
            with self._index_lock:
                index = self._index
                if index is None:
                    index = DocumentIndex(self._tree, columns=self._columns)
                    self._index = index
        return index

    @property
    def has_index(self) -> bool:
        """Whether the index is currently materialized (no side effects)."""
        return self._index is not None

    @property
    def plan_cache(self):
        """The planner's compiled-plan cache (hit/miss introspection)."""
        return self._planner.cache

    # -- query entry points ------------------------------------------------

    def xpath(
        self,
        query: "str | Any",
        strategy: str = "auto",
        *,
        trace: bool = False,
        deadline: "float | None" = None,
        max_visited: "int | None" = None,
        retries: int = 0,
        on_error: str = "raise",
    ) -> Result:
        """Evaluate a Core XPath query against the document root.

        ``trace`` records a span tree in ``result.stats.trace``;
        ``deadline`` (seconds) and ``max_visited`` (node-visit ceiling)
        bound each evaluation attempt, raising
        :class:`~repro.errors.ResourceBudgetExceeded` — unless the
        planner chose the strategy (``"auto"``), in which case it falls
        back to the next applicable one and records the downgrade in
        ``stats.fallback_from``.  ``retries`` re-attempts
        :class:`~repro.errors.TransientError` failures; ``on_error``
        picks the degradation policy (see the module docstring)."""
        return self._execute(
            "xpath", query, strategy,
            trace=trace, deadline=deadline, max_visited=max_visited,
            retries=retries, on_error=on_error,
        )

    def twig(
        self,
        query: "str | Any",
        strategy: str = "auto",
        *,
        trace: bool = False,
        deadline: "float | None" = None,
        max_visited: "int | None" = None,
        retries: int = 0,
        on_error: str = "raise",
    ) -> Result:
        """Match a twig pattern; answers are tuples over pattern nodes."""
        return self._execute(
            "twig", query, strategy,
            trace=trace, deadline=deadline, max_visited=max_visited,
            retries=retries, on_error=on_error,
        )

    def cq(
        self,
        query: "str | Any",
        strategy: str = "auto",
        *,
        trace: bool = False,
        deadline: "float | None" = None,
        max_visited: "int | None" = None,
        retries: int = 0,
        on_error: str = "raise",
    ) -> Result:
        """Evaluate a conjunctive query; answers are head tuples."""
        return self._execute(
            "cq", query, strategy,
            trace=trace, deadline=deadline, max_visited=max_visited,
            retries=retries, on_error=on_error,
        )

    def datalog(
        self,
        program: "str | Any",
        strategy: str = "auto",
        query_pred: "str | None" = None,
        *,
        trace: bool = False,
        deadline: "float | None" = None,
        max_visited: "int | None" = None,
        retries: int = 0,
        on_error: str = "raise",
    ) -> Result:
        """Evaluate a monadic datalog program's query predicate."""
        return self._execute(
            "datalog", program, strategy, query_pred=query_pred,
            trace=trace, deadline=deadline, max_visited=max_visited,
            retries=retries, on_error=on_error,
        )

    def run(
        self,
        kind: str,
        query: "str | Any",
        strategy: str = "auto",
        *,
        trace: bool = False,
        deadline: "float | None" = None,
        max_visited: "int | None" = None,
        retries: int = 0,
        on_error: str = "raise",
    ) -> Result:
        """Generic entry point: ``kind`` in xpath/twig/cq/datalog.

        Accepts either concrete syntax or an already-parsed query
        object, so callers that parse up front (the CLI, the test
        harness) share the same execution path."""
        return self._execute(
            kind, query, strategy,
            trace=trace, deadline=deadline, max_visited=max_visited,
            retries=retries, on_error=on_error,
        )

    def query(
        self,
        text: str,
        strategy: str = "auto",
        *,
        trace: bool = False,
        deadline: "float | None" = None,
        max_visited: "int | None" = None,
        retries: int = 0,
        on_error: str = "raise",
    ) -> Result:
        """Dispatch on concrete syntax: ``:-`` → CQ, a leading ``/`` →
        twig, otherwise Core XPath."""
        kind = "xpath"
        if ":-" in text:
            kind = "cq"
        elif text.lstrip().startswith(("/", ".")):
            kind = "twig"
        return self._execute(
            kind, text, strategy,
            trace=trace, deadline=deadline, max_visited=max_visited,
            retries=retries, on_error=on_error,
        )

    # -- strategy introspection -------------------------------------------

    def strategies(self, kind: str, query: "str | Any") -> list[str]:
        """Names of the registered strategies applicable to this query."""
        parsed = self._parsed(kind, query)
        return [s.name for s in strategies_for(kind, parsed, self.index)]

    def plan(self, kind: str, query: "str | Any") -> Plan:
        """The planner's choice for this query, without executing it."""
        return self._planner.plan(kind, self._parsed(kind, query), self.index)

    def cross_check(
        self,
        kind: str,
        query: "str | Any",
        strategies: "list[str] | None" = None,
        *,
        trace: bool = False,
        deadline: "float | None" = None,
        max_visited: "int | None" = None,
        retries: int = 0,
        on_error: str = "raise",
    ) -> dict[str, Result]:
        """Run the query under every applicable (or the given) strategy.

        Returns strategy name → Result; the differential test harness
        and the CLI's ``--engine all`` both build on this.  Budgets are
        enforced per strategy (each gets a fresh window), so a single
        expensive strategy exceeding ``max_visited`` fails only its own
        entry.
        """
        names = strategies if strategies is not None else self.strategies(kind, query)
        return {
            name: self._execute(
                kind, query, name,
                trace=trace, deadline=deadline, max_visited=max_visited,
                retries=retries, on_error=on_error,
            )
            for name in names
        }

    # -- edits (delegate to repro.trees.edit, invalidate the index) --------

    def insert_leaf(self, parent: int, position: int, label: str) -> "Database":
        from repro.trees.edit import insert_leaf

        return self._replace(insert_leaf(self._tree, parent, position, label))

    def insert_subtree(self, parent: int, position: int, sub: Tree) -> "Database":
        from repro.trees.edit import insert_subtree

        return self._replace(insert_subtree(self._tree, parent, position, sub))

    def delete_subtree(self, node: int) -> "Database":
        from repro.trees.edit import delete_subtree

        return self._replace(delete_subtree(self._tree, node))

    def relabel(self, node: int, label: str, keep_extra: bool = True) -> "Database":
        from repro.trees.edit import relabel

        return self._replace(relabel(self._tree, node, label, keep_extra))

    def splice(self, node: int) -> "Database":
        from repro.trees.edit import splice

        return self._replace(splice(self._tree, node))

    def _replace(self, tree: Tree) -> "Database":
        """Swap in an edited tree and drop the now-stale index."""
        self._tree = tree
        self._index = None
        return self

    # -- internals ---------------------------------------------------------

    def _parsed(self, kind: str, query: Any, query_pred: "str | None" = None) -> Any:
        if not isinstance(query, str):
            return query
        key = (kind, query, query_pred)
        cached = self._parse_cache.get(key)
        if cached is not None:
            return cached
        faultpoint("query.parse")
        if kind == "xpath":
            from repro.xpath.parser import parse_xpath

            parsed = parse_xpath(query)
        elif kind == "twig":
            from repro.twigjoin.pattern import parse_twig

            parsed = parse_twig(query)
        elif kind == "cq":
            from repro.cq.query import parse_cq

            parsed = parse_cq(query)
        elif kind == "datalog":
            from repro.datalog.parser import parse_program

            parsed = parse_program(query, query_pred=query_pred)
        else:
            raise QueryError(f"unknown query kind {kind!r}")
        self._parse_cache[key] = parsed
        return parsed

    def _execute(
        self,
        kind: str,
        query: Any,
        strategy: str,
        query_pred: "str | None" = None,
        trace: bool = False,
        deadline: "float | None" = None,
        max_visited: "int | None" = None,
        retries: int = 0,
        on_error: str = "raise",
    ) -> Result:
        if on_error not in ON_ERROR_POLICIES:
            raise QueryError(
                f"unknown on_error policy {on_error!r}; options: "
                + ", ".join(ON_ERROR_POLICIES)
            )
        if retries < 0:
            raise QueryError("retries must be >= 0")
        text = query if isinstance(query, str) else str(query)
        # the ambient tracing gate: one ContextVar read + an attribute
        # check (pinned near-zero by benchmarks/bench_tracing.py).  A
        # request whose sampler decided to record spans carries a tracer
        # on the active Observation; this call must execute supervised
        # so its spans land in the request's trace.
        ambient = current()
        if (
            trace
            or deadline is not None
            or max_visited is not None
            or retries
            or on_error != "raise"
            or (ambient is not None and ambient.tracer is not None)
        ):
            return self._execute_supervised(
                kind, text, query, strategy, query_pred,
                trace, deadline, max_visited, retries, on_error,
            )
        # fast path: no Observation, no spans, no counters — the only
        # instrumentation cost anywhere below is a None check
        parsed = self._parsed(kind, query, query_pred)
        plan_active = active_plan()
        trips_before = len(plan_active.trips) if plan_active is not None else 0
        built_here = self._index is None
        index = self.index
        hits_before = index.hits
        streamed_before = index.nodes_streamed
        if strategy in ("auto", None):
            plan = self._planner.plan(kind, parsed, index)
        else:
            plan = self._planner.validate(kind, strategy, parsed, index)
        definition = get_strategy(kind, plan.strategy)
        start = time.perf_counter()
        answer = definition.execute(parsed, index)
        elapsed = time.perf_counter() - start
        stats = ExecutionStats(
            kind=kind,
            query=text,
            strategy=plan.strategy,
            reason=plan.reason,
            elapsed_s=elapsed,
            answer_size=len(answer),
            index_built=built_here,
            index_hits=index.hits - hits_before,
            nodes_streamed=index.nodes_streamed - streamed_before,
            faults=_tripped_since(plan_active, trips_before),
            trace_id=ambient.trace_id if ambient is not None else None,
        )
        self.history.append(stats)
        return Result(answer, stats)

    def _execute_supervised(
        self,
        kind: str,
        text: str,
        query: Any,
        strategy: str,
        query_pred: "str | None",
        trace: bool,
        deadline: "float | None",
        max_visited: "int | None",
        retries: int,
        on_error: str,
    ) -> Result:
        """The supervised execution path: spans, counters, budgets, the
        retry policy and the degradation policy (docs/ROBUSTNESS.md).

        Per attempt, in order of authority:

        - :class:`TransientError` → re-attempt the same stage up to
          ``retries`` times, then treat as a hard failure.
        - :class:`ResourceBudgetExceeded` → under ``"raise"``,
          planner-chosen strategies fall back to the next ranked one
          (fresh budget) and explicit ones propagate — the historical
          budget semantics; under ``"fallback"``/``"partial"`` it is a
          hard attempt failure like any other.
        - any other failure → under ``"raise"`` it propagates; under
          ``"fallback"``/``"partial"`` the strategy joins the per-call
          blacklist and the next ranked strategy runs.

        Exhausting every strategy raises
        :class:`~repro.errors.AllStrategiesFailedError` (carrying the
        attempt chain) under ``"fallback"``, or degrades to an empty
        answer with ``stats.degraded=True`` under ``"partial"``.
        :class:`~repro.errors.QueryError` (a malformed request, an
        inapplicable explicit strategy) always propagates — no policy
        can repair a caller error.
        """
        # inherit the request's tracer and trace id when this call runs
        # under an observed context (the service middleware path): the
        # engine's spans then nest under the open request root instead
        # of starting a disconnected tree
        parent = current()
        if parent is not None and parent.tracer is not None:
            tracer = parent.tracer
        else:
            tracer = Tracer() if trace else None
        trace_id = parent.trace_id if parent is not None else None
        obs = Observation(tracer=tracer, trace_id=trace_id)
        plan_active = active_plan()
        trips_before = len(plan_active.trips) if plan_active is not None else 0
        may_fall_back = strategy in ("auto", None)
        attempts: list[Attempt] = []
        causes: list[BaseException] = []
        fallback_from: list[str] = []
        blacklist: set[str] = set()
        degraded = False
        succeeded = False
        answer: Any = None
        final_plan: "Plan | None" = None
        start = time.perf_counter()

        def give_up(exc: "BaseException | None") -> "Result | None":
            """Terminal failure handling per the degradation policy.

            Returns a partial Result (``on_error="partial"``), raises
            the wrapped chain (``"fallback"``), or re-raises ``exc``
            (``"raise"``).
            """
            if on_error == "partial":
                return None  # handled by the caller: degrade
            if on_error == "fallback":
                raise AllStrategiesFailedError(
                    kind, text, tuple(attempts), tuple(causes)
                )
            assert exc is not None
            raise exc

        with observed(obs):
            with obs.span("query:" + kind, query=text) as qspan:
                # ---- setup: parse, index, plan (transients retryable) ----
                setup_tries = 0
                while True:
                    try:
                        parsed = self._parsed(kind, query, query_pred)
                        built_here = self._index is None
                        if built_here:
                            with obs.span("index-build"):
                                index = self.index
                            obs.count("index.builds")
                        else:
                            index = self.index
                        hits_before = index.hits
                        streamed_before = index.nodes_streamed
                        with obs.span("plan"):
                            if may_fall_back:
                                plans = self._planner.ranked(kind, parsed, index)
                            else:
                                plans = [
                                    self._planner.validate(
                                        kind, strategy, parsed, index
                                    )
                                ]
                        break
                    except QueryError:
                        raise  # caller error: no policy can repair it
                    except Exception as exc:
                        transient = isinstance(exc, TransientError)
                        attempts.append(
                            Attempt(
                                "(setup)",
                                "transient" if transient else "error",
                                f"{type(exc).__name__}: {exc}",
                                trace_id=obs.trace_id,
                            )
                        )
                        causes.append(exc)
                        obs.count("engine.attempt_errors")
                        if transient:
                            obs.count("engine.transients")
                            if setup_tries < retries:
                                setup_tries += 1
                                obs.count("engine.retries")
                                continue
                        if on_error == "raise":
                            raise
                        give_up(exc)  # raises under "fallback"
                        degraded = True
                        built_here = False
                        index = None
                        hits_before = streamed_before = 0
                        plans = []
                        break

                # ---- attempts: retry transients, blacklist, fall back ----
                if not degraded:
                    for i, plan in enumerate(plans):
                        if plan.strategy in blacklist:
                            continue
                        is_last = i == len(plans) - 1
                        plan_tries = 0
                        while True:
                            if deadline is not None or max_visited is not None:
                                obs.budget = ResourceBudget(deadline, max_visited)
                            definition = get_strategy(kind, plan.strategy)
                            attempt_start = time.perf_counter()
                            try:
                                with obs.span(
                                    "execute:" + plan.strategy, reason=plan.reason
                                ):
                                    answer = definition.execute(parsed, index)
                                attempts.append(
                                    Attempt(
                                        plan.strategy, "ok", None,
                                        time.perf_counter() - attempt_start,
                                        trace_id=obs.trace_id,
                                    )
                                )
                                final_plan = plan
                                succeeded = True
                                break
                            except ResourceBudgetExceeded as exc:
                                obs.count("budget.exceeded")
                                attempts.append(
                                    Attempt(
                                        plan.strategy, "budget", str(exc),
                                        time.perf_counter() - attempt_start,
                                        trace_id=obs.trace_id,
                                    )
                                )
                                causes.append(exc)
                                if may_fall_back and not is_last:
                                    fallback_from.append(plan.strategy)
                                    obs.count("budget.fallbacks")
                                    break  # next ranked plan, fresh budget
                                if on_error == "raise":
                                    raise
                                break  # hard failure: maybe degrade below
                            except QueryError:
                                raise
                            except Exception as exc:
                                transient = isinstance(exc, TransientError)
                                attempts.append(
                                    Attempt(
                                        plan.strategy,
                                        "transient" if transient else "error",
                                        f"{type(exc).__name__}: {exc}",
                                        time.perf_counter() - attempt_start,
                                        trace_id=obs.trace_id,
                                    )
                                )
                                causes.append(exc)
                                obs.count("engine.attempt_errors")
                                if transient:
                                    obs.count("engine.transients")
                                    if plan_tries < retries:
                                        plan_tries += 1
                                        obs.count("engine.retries")
                                        continue  # same strategy again
                                if on_error == "raise":
                                    raise
                                blacklist.add(plan.strategy)
                                obs.count("engine.blacklisted")
                                fallback_from.append(plan.strategy)
                                break  # next ranked plan
                        if succeeded:
                            break
                    if not succeeded:
                        give_up(causes[-1] if causes else None)
                        degraded = True

                if degraded:
                    obs.count("engine.degraded")
                    answer = set()
                    final_plan = Plan(
                        kind,
                        "(degraded)",
                        "every strategy failed; on_error='partial' "
                        "degraded to an empty answer",
                    )
                    if index is None:
                        hits_before = streamed_before = 0

        elapsed = time.perf_counter() - start
        obs.budget = None
        METRICS.merge(obs.counters)
        # wall time, not just counts: cumulative per-kind and
        # per-strategy latency stays queryable after the call is gone
        METRICS.observe_duration("query." + kind, elapsed)
        METRICS.observe_duration("strategy." + final_plan.strategy, elapsed)
        # fold this call's own span subtree (``qspan``), not
        # ``tracer.root``: with an inherited tracer the root is the
        # still-open request span — folding it would double-count spans
        # of earlier calls in the same request (e.g. a batch)
        if qspan is not None:
            for span in qspan.iter_spans():
                METRICS.observe_duration("span." + span.name, span.duration_s)
        stats = ExecutionStats(
            kind=kind,
            query=text,
            strategy=final_plan.strategy,
            reason=final_plan.reason,
            elapsed_s=elapsed,
            answer_size=len(answer),
            index_built=built_here,
            index_hits=(index.hits - hits_before) if index is not None else 0,
            nodes_streamed=(
                (index.nodes_streamed - streamed_before)
                if index is not None
                else 0
            ),
            counters=dict(obs.counters),
            trace=qspan,
            fallback_from=tuple(fallback_from),
            attempts=tuple(attempts),
            faults=_tripped_since(plan_active, trips_before),
            degraded=degraded,
            trace_id=obs.trace_id,
        )
        self.history.append(stats)
        return Result(answer, stats)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "indexed" if self._index is not None else "no index"
        return f"Database(n={self._tree.n}, {state}, {len(self.history)} queries)"


def evaluate_document(
    path: str,
    kind: str,
    query: str,
    *,
    query_pred: "str | None" = None,
    columns: "str | bool | None" = None,
    retries: int = 0,
    on_error: str = "raise",
    deadline: "float | None" = None,
    max_visited: "int | None" = None,
    attributes_as_labels: bool = False,
) -> Result:
    """Load one document and evaluate one query against it.

    This is the per-document unit of work the corpus layer
    (:mod:`repro.corpus`) fans out to worker processes: answers over
    disjoint trees are independent, so each call is self-contained —
    fresh :class:`Database`, no shared caches — and safe to retry on a
    different process after a crash.  ``kind`` is xpath/twig/cq/datalog;
    ``query_pred`` selects the datalog query predicate.  All supervisor
    knobs (``retries``/``on_error``) and budgets pass straight through
    to :meth:`Database.run`.
    """
    db = Database.from_file(
        path, attributes_as_labels=attributes_as_labels, columns=columns
    )
    if kind == "datalog":
        return db.datalog(
            query, query_pred=query_pred,
            deadline=deadline, max_visited=max_visited,
            retries=retries, on_error=on_error,
        )
    return db.run(
        kind, query,
        deadline=deadline, max_visited=max_visited,
        retries=retries, on_error=on_error,
    )


def _truncate_text(text: str, rng) -> str:
    """Corruption mutator for the ``disk.read`` site on ``.xml`` reads."""
    if len(text) < 2:
        return ""
    return text[: rng.randrange(1, len(text))]


def _tripped_since(plan, trips_before: int) -> tuple[str, ...]:
    """Distinct sites tripped by ``plan`` after ``trips_before``."""
    if plan is None or len(plan.trips) <= trips_before:
        return ()
    seen: dict[str, None] = {}
    for trip in plan.trips[trips_before:]:
        seen.setdefault(trip.site, None)
    return tuple(seen)
