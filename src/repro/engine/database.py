"""The unified front door: one document, one cached index, one planner.

:class:`Database` wraps a :class:`~repro.trees.tree.Tree` and gives
every query language in the library a single entry point::

    from repro.engine import Database

    db = Database.from_xml("<a><b/><c/></a>")
    result = db.xpath("Child*[lab() = b]")       # planner picks a strategy
    result.answer                                 # {1}
    result.stats.strategy                         # e.g. "structural-join"
    result.stats.index_built                      # True on the first query
    db.xpath("Child*[lab() = b]").stats.index_built   # False: index reused

The :class:`~repro.engine.index.DocumentIndex` is built lazily on the
first query and reused by every subsequent one — that amortization is
the engine's hot path.  Edits go through the same facade
(:meth:`insert_leaf` etc.); they delegate to :mod:`repro.trees.edit`
and invalidate the cached index, so a stale index can never serve a
mutated document.
"""

from __future__ import annotations

import time
from typing import Any

from repro.errors import QueryError
from repro.trees.tree import Tree
from repro.engine.index import DocumentIndex
from repro.engine.planner import Plan, Planner
from repro.engine.stats import ExecutionStats, Result
from repro.engine.strategies import get_strategy, strategies_for

__all__ = ["Database"]


class Database:
    """A queryable document: Tree + cached DocumentIndex + Planner."""

    def __init__(self, tree: Tree, planner: "Planner | None" = None):
        self._tree = tree
        self._planner = planner or Planner()
        self._index: "DocumentIndex | None" = None
        self._parse_cache: dict[tuple, Any] = {}
        #: ExecutionStats of every call, in order — the query log.
        self.history: list[ExecutionStats] = []

    # -- construction ------------------------------------------------------

    @classmethod
    def from_xml(cls, text: str, attributes_as_labels: bool = False) -> "Database":
        from repro.trees.xmlio import parse_xml

        return cls(parse_xml(text, attributes_as_labels=attributes_as_labels))

    @classmethod
    def from_file(cls, path: str, attributes_as_labels: bool = False) -> "Database":
        """Load an ``.xml`` document or an ``.rtre`` binary store."""
        if path.endswith(".rtre"):
            from repro.storage.diskstore import load_tree

            return cls(load_tree(path))
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_xml(fh.read(), attributes_as_labels)

    # -- document and index access ----------------------------------------

    @property
    def tree(self) -> Tree:
        return self._tree

    @property
    def index(self) -> DocumentIndex:
        """The document index, built on first access and then cached."""
        if self._index is None:
            self._index = DocumentIndex(self._tree)
        return self._index

    @property
    def has_index(self) -> bool:
        """Whether the index is currently materialized (no side effects)."""
        return self._index is not None

    # -- query entry points ------------------------------------------------

    def xpath(self, query: "str | Any", strategy: str = "auto") -> Result:
        """Evaluate a Core XPath query against the document root."""
        return self._execute("xpath", query, strategy)

    def twig(self, query: "str | Any", strategy: str = "auto") -> Result:
        """Match a twig pattern; answers are tuples over pattern nodes."""
        return self._execute("twig", query, strategy)

    def cq(self, query: "str | Any", strategy: str = "auto") -> Result:
        """Evaluate a conjunctive query; answers are head tuples."""
        return self._execute("cq", query, strategy)

    def datalog(
        self,
        program: "str | Any",
        strategy: str = "auto",
        query_pred: "str | None" = None,
    ) -> Result:
        """Evaluate a monadic datalog program's query predicate."""
        return self._execute("datalog", program, strategy, query_pred=query_pred)

    def run(self, kind: str, query: "str | Any", strategy: str = "auto") -> Result:
        """Generic entry point: ``kind`` in xpath/twig/cq/datalog.

        Accepts either concrete syntax or an already-parsed query
        object, so callers that parse up front (the CLI, the test
        harness) share the same execution path."""
        return self._execute(kind, query, strategy)

    def query(self, text: str, strategy: str = "auto") -> Result:
        """Dispatch on concrete syntax: ``:-`` → CQ, a leading ``/`` →
        twig, otherwise Core XPath."""
        if ":-" in text:
            return self.cq(text, strategy)
        if text.lstrip().startswith(("/", ".")):
            return self.twig(text, strategy)
        return self.xpath(text, strategy)

    # -- strategy introspection -------------------------------------------

    def strategies(self, kind: str, query: "str | Any") -> list[str]:
        """Names of the registered strategies applicable to this query."""
        parsed = self._parsed(kind, query)
        return [s.name for s in strategies_for(kind, parsed, self.index)]

    def plan(self, kind: str, query: "str | Any") -> Plan:
        """The planner's choice for this query, without executing it."""
        return self._planner.plan(kind, self._parsed(kind, query), self.index)

    def cross_check(
        self,
        kind: str,
        query: "str | Any",
        strategies: "list[str] | None" = None,
    ) -> dict[str, Result]:
        """Run the query under every applicable (or the given) strategy.

        Returns strategy name → Result; the differential test harness
        and the CLI's ``--engine all`` both build on this.
        """
        names = strategies if strategies is not None else self.strategies(kind, query)
        return {name: self._execute(kind, query, name) for name in names}

    # -- edits (delegate to repro.trees.edit, invalidate the index) --------

    def insert_leaf(self, parent: int, position: int, label: str) -> "Database":
        from repro.trees.edit import insert_leaf

        return self._replace(insert_leaf(self._tree, parent, position, label))

    def insert_subtree(self, parent: int, position: int, sub: Tree) -> "Database":
        from repro.trees.edit import insert_subtree

        return self._replace(insert_subtree(self._tree, parent, position, sub))

    def delete_subtree(self, node: int) -> "Database":
        from repro.trees.edit import delete_subtree

        return self._replace(delete_subtree(self._tree, node))

    def relabel(self, node: int, label: str, keep_extra: bool = True) -> "Database":
        from repro.trees.edit import relabel

        return self._replace(relabel(self._tree, node, label, keep_extra))

    def splice(self, node: int) -> "Database":
        from repro.trees.edit import splice

        return self._replace(splice(self._tree, node))

    def _replace(self, tree: Tree) -> "Database":
        """Swap in an edited tree and drop the now-stale index."""
        self._tree = tree
        self._index = None
        return self

    # -- internals ---------------------------------------------------------

    def _parsed(self, kind: str, query: Any, query_pred: "str | None" = None) -> Any:
        if not isinstance(query, str):
            return query
        key = (kind, query, query_pred)
        cached = self._parse_cache.get(key)
        if cached is not None:
            return cached
        if kind == "xpath":
            from repro.xpath.parser import parse_xpath

            parsed = parse_xpath(query)
        elif kind == "twig":
            from repro.twigjoin.pattern import parse_twig

            parsed = parse_twig(query)
        elif kind == "cq":
            from repro.cq.query import parse_cq

            parsed = parse_cq(query)
        elif kind == "datalog":
            from repro.datalog.parser import parse_program

            parsed = parse_program(query, query_pred=query_pred)
        else:
            raise QueryError(f"unknown query kind {kind!r}")
        self._parse_cache[key] = parsed
        return parsed

    def _execute(
        self,
        kind: str,
        query: Any,
        strategy: str,
        query_pred: "str | None" = None,
    ) -> Result:
        text = query if isinstance(query, str) else str(query)
        parsed = self._parsed(kind, query, query_pred)
        built_here = self._index is None
        index = self.index
        hits_before = index.hits
        streamed_before = index.nodes_streamed
        if strategy in ("auto", None):
            plan = self._planner.plan(kind, parsed, index)
        else:
            plan = self._planner.validate(kind, strategy, parsed, index)
        definition = get_strategy(kind, plan.strategy)
        start = time.perf_counter()
        answer = definition.execute(parsed, index)
        elapsed = time.perf_counter() - start
        stats = ExecutionStats(
            kind=kind,
            query=text,
            strategy=plan.strategy,
            reason=plan.reason,
            elapsed_s=elapsed,
            answer_size=len(answer),
            index_built=built_here,
            index_hits=index.hits - hits_before,
            nodes_streamed=index.nodes_streamed - streamed_before,
        )
        self.history.append(stats)
        return Result(answer, stats)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "indexed" if self._index is not None else "no index"
        return f"Database(n={self._tree.n}, {state}, {len(self.history)} queries)"
