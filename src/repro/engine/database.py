"""The unified front door: one document, one cached index, one planner.

:class:`Database` wraps a :class:`~repro.trees.tree.Tree` and gives
every query language in the library a single entry point::

    from repro.engine import Database

    db = Database.from_xml("<a><b/><c/></a>")
    result = db.xpath("Child*[lab() = b]")       # planner picks a strategy
    result.answer                                 # {1}
    result.stats.strategy                         # e.g. "structural-join"
    result.stats.index_built                      # True on the first query
    db.xpath("Child*[lab() = b]").stats.index_built   # False: index reused

The :class:`~repro.engine.index.DocumentIndex` is built lazily on the
first query and reused by every subsequent one — that amortization is
the engine's hot path.  Edits go through the same facade
(:meth:`insert_leaf` etc.); they delegate to :mod:`repro.trees.edit`
and invalidate the cached index, so a stale index can never serve a
mutated document.

Every query entry point also accepts the observability/governance
keywords (docs/OBSERVABILITY.md)::

    db.xpath(q, trace=True)              # stats.trace = span tree
    db.xpath(q, deadline=0.05)           # 50 ms per evaluation attempt
    db.xpath(q, max_visited=10_000)      # node-visit ceiling per attempt

Budgeted auto-planned queries fall back to the next applicable strategy
when an attempt exceeds its budget; the abandoned strategies are listed
in ``stats.fallback_from``.
"""

from __future__ import annotations

import time
from typing import Any

from repro.errors import QueryError, ResourceBudgetExceeded
from repro.obs.budget import ResourceBudget
from repro.obs.context import Observation, observed
from repro.obs.metrics import METRICS
from repro.obs.tracer import Tracer
from repro.trees.tree import Tree
from repro.engine.index import DocumentIndex
from repro.engine.planner import Plan, Planner
from repro.engine.stats import ExecutionStats, Result
from repro.engine.strategies import get_strategy, strategies_for

__all__ = ["Database"]


class Database:
    """A queryable document: Tree + cached DocumentIndex + Planner."""

    def __init__(self, tree: Tree, planner: "Planner | None" = None):
        self._tree = tree
        self._planner = planner or Planner()
        self._index: "DocumentIndex | None" = None
        self._parse_cache: dict[tuple, Any] = {}
        #: ExecutionStats of every call, in order — the query log.
        self.history: list[ExecutionStats] = []

    # -- construction ------------------------------------------------------

    @classmethod
    def from_xml(cls, text: str, attributes_as_labels: bool = False) -> "Database":
        from repro.trees.xmlio import parse_xml

        return cls(parse_xml(text, attributes_as_labels=attributes_as_labels))

    @classmethod
    def from_file(cls, path: str, attributes_as_labels: bool = False) -> "Database":
        """Load an ``.xml`` document or an ``.rtre`` binary store."""
        if path.endswith(".rtre"):
            from repro.storage.diskstore import load_tree

            return cls(load_tree(path))
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_xml(fh.read(), attributes_as_labels)

    # -- document and index access ----------------------------------------

    @property
    def tree(self) -> Tree:
        return self._tree

    @property
    def index(self) -> DocumentIndex:
        """The document index, built on first access and then cached."""
        if self._index is None:
            self._index = DocumentIndex(self._tree)
        return self._index

    @property
    def has_index(self) -> bool:
        """Whether the index is currently materialized (no side effects)."""
        return self._index is not None

    # -- query entry points ------------------------------------------------

    def xpath(
        self,
        query: "str | Any",
        strategy: str = "auto",
        *,
        trace: bool = False,
        deadline: "float | None" = None,
        max_visited: "int | None" = None,
    ) -> Result:
        """Evaluate a Core XPath query against the document root.

        ``trace`` records a span tree in ``result.stats.trace``;
        ``deadline`` (seconds) and ``max_visited`` (node-visit ceiling)
        bound each evaluation attempt, raising
        :class:`~repro.errors.ResourceBudgetExceeded` — unless the
        planner chose the strategy (``"auto"``), in which case it falls
        back to the next applicable one and records the downgrade in
        ``stats.fallback_from``."""
        return self._execute(
            "xpath", query, strategy,
            trace=trace, deadline=deadline, max_visited=max_visited,
        )

    def twig(
        self,
        query: "str | Any",
        strategy: str = "auto",
        *,
        trace: bool = False,
        deadline: "float | None" = None,
        max_visited: "int | None" = None,
    ) -> Result:
        """Match a twig pattern; answers are tuples over pattern nodes."""
        return self._execute(
            "twig", query, strategy,
            trace=trace, deadline=deadline, max_visited=max_visited,
        )

    def cq(
        self,
        query: "str | Any",
        strategy: str = "auto",
        *,
        trace: bool = False,
        deadline: "float | None" = None,
        max_visited: "int | None" = None,
    ) -> Result:
        """Evaluate a conjunctive query; answers are head tuples."""
        return self._execute(
            "cq", query, strategy,
            trace=trace, deadline=deadline, max_visited=max_visited,
        )

    def datalog(
        self,
        program: "str | Any",
        strategy: str = "auto",
        query_pred: "str | None" = None,
        *,
        trace: bool = False,
        deadline: "float | None" = None,
        max_visited: "int | None" = None,
    ) -> Result:
        """Evaluate a monadic datalog program's query predicate."""
        return self._execute(
            "datalog", program, strategy, query_pred=query_pred,
            trace=trace, deadline=deadline, max_visited=max_visited,
        )

    def run(
        self,
        kind: str,
        query: "str | Any",
        strategy: str = "auto",
        *,
        trace: bool = False,
        deadline: "float | None" = None,
        max_visited: "int | None" = None,
    ) -> Result:
        """Generic entry point: ``kind`` in xpath/twig/cq/datalog.

        Accepts either concrete syntax or an already-parsed query
        object, so callers that parse up front (the CLI, the test
        harness) share the same execution path."""
        return self._execute(
            kind, query, strategy,
            trace=trace, deadline=deadline, max_visited=max_visited,
        )

    def query(
        self,
        text: str,
        strategy: str = "auto",
        *,
        trace: bool = False,
        deadline: "float | None" = None,
        max_visited: "int | None" = None,
    ) -> Result:
        """Dispatch on concrete syntax: ``:-`` → CQ, a leading ``/`` →
        twig, otherwise Core XPath."""
        kind = "xpath"
        if ":-" in text:
            kind = "cq"
        elif text.lstrip().startswith(("/", ".")):
            kind = "twig"
        return self._execute(
            kind, text, strategy,
            trace=trace, deadline=deadline, max_visited=max_visited,
        )

    # -- strategy introspection -------------------------------------------

    def strategies(self, kind: str, query: "str | Any") -> list[str]:
        """Names of the registered strategies applicable to this query."""
        parsed = self._parsed(kind, query)
        return [s.name for s in strategies_for(kind, parsed, self.index)]

    def plan(self, kind: str, query: "str | Any") -> Plan:
        """The planner's choice for this query, without executing it."""
        return self._planner.plan(kind, self._parsed(kind, query), self.index)

    def cross_check(
        self,
        kind: str,
        query: "str | Any",
        strategies: "list[str] | None" = None,
        *,
        trace: bool = False,
        deadline: "float | None" = None,
        max_visited: "int | None" = None,
    ) -> dict[str, Result]:
        """Run the query under every applicable (or the given) strategy.

        Returns strategy name → Result; the differential test harness
        and the CLI's ``--engine all`` both build on this.  Budgets are
        enforced per strategy (each gets a fresh window), so a single
        expensive strategy exceeding ``max_visited`` fails only its own
        entry.
        """
        names = strategies if strategies is not None else self.strategies(kind, query)
        return {
            name: self._execute(
                kind, query, name,
                trace=trace, deadline=deadline, max_visited=max_visited,
            )
            for name in names
        }

    # -- edits (delegate to repro.trees.edit, invalidate the index) --------

    def insert_leaf(self, parent: int, position: int, label: str) -> "Database":
        from repro.trees.edit import insert_leaf

        return self._replace(insert_leaf(self._tree, parent, position, label))

    def insert_subtree(self, parent: int, position: int, sub: Tree) -> "Database":
        from repro.trees.edit import insert_subtree

        return self._replace(insert_subtree(self._tree, parent, position, sub))

    def delete_subtree(self, node: int) -> "Database":
        from repro.trees.edit import delete_subtree

        return self._replace(delete_subtree(self._tree, node))

    def relabel(self, node: int, label: str, keep_extra: bool = True) -> "Database":
        from repro.trees.edit import relabel

        return self._replace(relabel(self._tree, node, label, keep_extra))

    def splice(self, node: int) -> "Database":
        from repro.trees.edit import splice

        return self._replace(splice(self._tree, node))

    def _replace(self, tree: Tree) -> "Database":
        """Swap in an edited tree and drop the now-stale index."""
        self._tree = tree
        self._index = None
        return self

    # -- internals ---------------------------------------------------------

    def _parsed(self, kind: str, query: Any, query_pred: "str | None" = None) -> Any:
        if not isinstance(query, str):
            return query
        key = (kind, query, query_pred)
        cached = self._parse_cache.get(key)
        if cached is not None:
            return cached
        if kind == "xpath":
            from repro.xpath.parser import parse_xpath

            parsed = parse_xpath(query)
        elif kind == "twig":
            from repro.twigjoin.pattern import parse_twig

            parsed = parse_twig(query)
        elif kind == "cq":
            from repro.cq.query import parse_cq

            parsed = parse_cq(query)
        elif kind == "datalog":
            from repro.datalog.parser import parse_program

            parsed = parse_program(query, query_pred=query_pred)
        else:
            raise QueryError(f"unknown query kind {kind!r}")
        self._parse_cache[key] = parsed
        return parsed

    def _execute(
        self,
        kind: str,
        query: Any,
        strategy: str,
        query_pred: "str | None" = None,
        trace: bool = False,
        deadline: "float | None" = None,
        max_visited: "int | None" = None,
    ) -> Result:
        text = query if isinstance(query, str) else str(query)
        parsed = self._parsed(kind, query, query_pred)
        if trace or deadline is not None or max_visited is not None:
            return self._execute_observed(
                kind, text, parsed, strategy, trace, deadline, max_visited
            )
        # fast path: no Observation, no spans, no counters — the only
        # instrumentation cost anywhere below is a None check
        built_here = self._index is None
        index = self.index
        hits_before = index.hits
        streamed_before = index.nodes_streamed
        if strategy in ("auto", None):
            plan = self._planner.plan(kind, parsed, index)
        else:
            plan = self._planner.validate(kind, strategy, parsed, index)
        definition = get_strategy(kind, plan.strategy)
        start = time.perf_counter()
        answer = definition.execute(parsed, index)
        elapsed = time.perf_counter() - start
        stats = ExecutionStats(
            kind=kind,
            query=text,
            strategy=plan.strategy,
            reason=plan.reason,
            elapsed_s=elapsed,
            answer_size=len(answer),
            index_built=built_here,
            index_hits=index.hits - hits_before,
            nodes_streamed=index.nodes_streamed - streamed_before,
        )
        self.history.append(stats)
        return Result(answer, stats)

    def _execute_observed(
        self,
        kind: str,
        text: str,
        parsed: Any,
        strategy: str,
        trace: bool,
        deadline: "float | None",
        max_visited: "int | None",
    ) -> Result:
        """The observed execution path: spans, counters, budgets, fallback.

        Planner-chosen strategies (``"auto"``) walk ``Planner.ranked``:
        an attempt that raises :class:`ResourceBudgetExceeded` is
        abandoned, the next applicable strategy gets a *fresh* budget,
        and every downgrade lands in ``stats.fallback_from``.  An
        explicitly requested strategy never falls back — the exception
        propagates to the caller.
        """
        tracer = Tracer() if trace else None
        obs = Observation(tracer=tracer)
        start = time.perf_counter()
        with observed(obs):
            with obs.span("query:" + kind, query=text):
                built_here = self._index is None
                if built_here:
                    with obs.span("index-build"):
                        index = self.index
                    obs.count("index.builds")
                else:
                    index = self.index
                hits_before = index.hits
                streamed_before = index.nodes_streamed
                with obs.span("plan"):
                    if strategy in ("auto", None):
                        plans = self._planner.ranked(kind, parsed, index)
                        may_fall_back = True
                    else:
                        plans = [
                            self._planner.validate(kind, strategy, parsed, index)
                        ]
                        may_fall_back = False
                fallback_from: list[str] = []
                answer = None
                final_plan = plans[-1]
                for i, plan in enumerate(plans):
                    if deadline is not None or max_visited is not None:
                        obs.budget = ResourceBudget(deadline, max_visited)
                    definition = get_strategy(kind, plan.strategy)
                    with obs.span("execute:" + plan.strategy, reason=plan.reason):
                        try:
                            answer = definition.execute(parsed, index)
                            final_plan = plan
                            break
                        except ResourceBudgetExceeded:
                            obs.count("budget.exceeded")
                            if not may_fall_back or i == len(plans) - 1:
                                raise
                            fallback_from.append(plan.strategy)
                            obs.count("budget.fallbacks")
        elapsed = time.perf_counter() - start
        obs.budget = None
        METRICS.merge(obs.counters)
        # wall time, not just counts: cumulative per-kind and
        # per-strategy latency stays queryable after the call is gone
        METRICS.observe_duration("query." + kind, elapsed)
        METRICS.observe_duration("strategy." + final_plan.strategy, elapsed)
        if tracer is not None and tracer.root is not None:
            for span in tracer.root.iter_spans():
                METRICS.observe_duration("span." + span.name, span.duration_s)
        stats = ExecutionStats(
            kind=kind,
            query=text,
            strategy=final_plan.strategy,
            reason=final_plan.reason,
            elapsed_s=elapsed,
            answer_size=len(answer),
            index_built=built_here,
            index_hits=index.hits - hits_before,
            nodes_streamed=index.nodes_streamed - streamed_before,
            counters=dict(obs.counters),
            trace=tracer.root if tracer is not None else None,
            fallback_from=tuple(fallback_from),
        )
        self.history.append(stats)
        return Result(answer, stats)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "indexed" if self._index is not None else "no index"
        return f"Database(n={self._tree.n}, {state}, {len(self.history)} queries)"
