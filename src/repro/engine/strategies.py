"""The strategy registry: every evaluation route the engine can take.

One :class:`Strategy` per (query kind, algorithm family) pair, each a
thin adapter from the module APIs to the uniform signature

    ``execute(parsed_query, index) -> answer``

where ``index`` is the shared :class:`~repro.engine.index.DocumentIndex`
(strategies pull label streams from it, which is both the cache hot
path and what makes index usage observable in ``ExecutionStats``).

The registry is the single source of truth for strategy *names* — the
CLI's ``--engine`` flag, the planner, and the differential test harness
all resolve names here, so they can never disagree about what exists.

Kinds and strategies:

========  ================  ==================================================
kind      strategy          algorithm
========  ================  ==================================================
xpath     linear            context-set evaluator, O(|Q|·||A||)  (§4)
xpath     denotational      memoized P1–P4/Q1–Q5 semantics; the only route
                            that supports position()  ([33])
xpath     datalog           Core XPath → stratified monadic datalog → TMNF →
                            Horn-SAT → Minoux  (§3)
xpath     automaton         bottom-up + context automaton passes, downward
                            fragment  (§4, Thm 4.4)
xpath     structural-join   per-step stack structural joins over the label
                            partitions, label-only downward spines  (§2)
xpath     cq                conjunctive fragment → acyclic CQ → Yannakakis
                            (Prop. 4.2)
twig      twigstack         holistic TwigStack  (§6)
twig      pathstack         PathStack, path patterns only  (§6)
twig      binary            one structural join per edge with materialized
                            intermediates  (§2+§6 baseline)
twig      ac                maximal arc-consistent pre-valuation + pointer
                            enumeration  (Props. 6.9/6.10)
twig      yannakakis        twig → acyclic CQ → Yannakakis  (§4)
cq        backtracking      exponential backtracking baseline
cq        yannakakis        Yannakakis on acyclic CQs  (§4)
cq        treewidth         bounded-tree-width evaluation  (Thm 4.1)
cq        rewrite           rewriting to a union of acyclic CQs  (Thm 5.1)
datalog   minoux            TMNF → ground Horn-SAT → Minoux  (§3)
datalog   naive             naive rule-matching fixpoint baseline
========  ================  ==================================================
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import QueryError
from repro.faults import faultpoint, register_site
from repro.obs.context import current as _obs_current
from repro.trees.axes import Axis
from repro.xpath.ast import (
    AxisStep,
    LabelTest,
    PositionTest,
    XPathExpr,
    steps_of,
    walk_expr,
)

__all__ = [
    "Strategy",
    "strategies_for",
    "get_strategy",
    "strategy_names",
    "STRATEGIES",
]


@dataclass(frozen=True)
class Strategy:
    """One evaluation route for one query kind."""

    kind: str
    name: str
    summary: str
    applicable: Callable[[Any, Any], bool]
    execute: Callable[[Any, Any], Any]


def _always(_query: Any, _index: Any) -> bool:
    return True


# a shared reentrant no-op for `with` statements on the unobserved path
_NULL_CM = nullcontext()


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


def xpath_labels(expr: XPathExpr) -> list[str]:
    """Labels mentioned by ``lab() = L`` tests, in first-use order."""
    seen: dict[str, None] = {}
    for node in walk_expr(expr):
        if isinstance(node, LabelTest):
            seen.setdefault(node.label, None)
    return list(seen)


def cq_labels(query) -> list[str]:
    """Labels of ``Lab:a`` atoms of a CQ (or datalog program rules)."""
    from repro.trees.structure import _LABEL_PREFIX

    seen: dict[str, None] = {}
    for atom in query.atoms:
        if atom.pred.startswith(_LABEL_PREFIX):
            seen.setdefault(atom.pred[len(_LABEL_PREFIX):], None)
    return list(seen)


def datalog_labels(program) -> list[str]:
    from repro.trees.structure import _LABEL_PREFIX

    seen: dict[str, None] = {}
    for rule in program.rules:
        for atom in rule.body:
            if atom.pred.startswith(_LABEL_PREFIX):
                seen.setdefault(atom.pred[len(_LABEL_PREFIX):], None)
    return list(seen)


def _touch(index, labels) -> None:
    """Pull the referenced label partitions through the index.

    The partitions are shared with the Tree's internal cache, so the
    evaluator that runs next reads exactly these lists; routing the
    fetch through the index is what makes the usage countable.
    """
    ctx = _obs_current()
    for label in labels:
        nodes = index.nodes_with_label(label)
        if ctx is not None:
            ctx.count("index.labels_touched")
            ctx.tick(len(nodes))


# ---------------------------------------------------------------------------
# xpath strategies
# ---------------------------------------------------------------------------


def _has_position(expr: XPathExpr) -> bool:
    return any(isinstance(n, PositionTest) for n in walk_expr(expr))


def _xpath_linear(expr, index):
    from repro.xpath.contextset import evaluate_query_linear

    _touch(index, xpath_labels(expr))
    return evaluate_query_linear(expr, index.tree)


def _xpath_denotational(expr, index):
    from repro.xpath.semantics import evaluate_query

    _touch(index, xpath_labels(expr))
    return evaluate_query(expr, index.tree)


def _xpath_datalog(expr, index):
    from repro.xpath.translate import evaluate_datalog_translation, xpath_to_datalog

    _touch(index, xpath_labels(expr))
    return evaluate_datalog_translation(xpath_to_datalog(expr), index.tree)


def _xpath_automaton_applicable(expr, _index) -> bool:
    from repro.automata.xpathrun import is_downward

    return is_downward(expr)


def _xpath_automaton(expr, index):
    from repro.automata.xpathrun import evaluate_xpath_automaton

    _touch(index, xpath_labels(expr))
    cols = getattr(index, "columns", None)
    if cols is not None:
        from repro.engine.columns import evaluate_xpath_automaton_columns

        return evaluate_xpath_automaton_columns(expr, cols)
    return evaluate_xpath_automaton(expr, index.tree)


def sj_spec(expr: XPathExpr) -> "list[tuple[Axis, list[str]]] | None":
    """The structural-join plan of a label-only downward spine, or None.

    Applicable when the expression is a union-free step sequence over
    Child/Child+/Child* whose qualifiers are all plain label tests —
    then each step is one join between the frontier and a label stream.
    """
    try:
        steps = steps_of(expr)
    except ValueError:
        return None
    spec: list[tuple[Axis, list[str]]] = []
    for step in steps:
        if step.axis not in (Axis.CHILD, Axis.CHILD_PLUS, Axis.CHILD_STAR):
            return None
        if not all(isinstance(q, LabelTest) for q in step.qualifiers):
            return None
        spec.append((step.axis, [q.label for q in step.qualifiers]))
    return spec


def _xpath_structural_join_applicable(expr, _index) -> bool:
    return sj_spec(expr) is not None


def _xpath_structural_join_columns(spec, index, cols):
    """The same spine plan over flat columns: each Child+/Child* step is
    an interval *semi*-join (no pair materialization), each Child step a
    parent-column filter — inner loops scan ints only."""
    ctx = _obs_current()
    current: list[int] = [index.tree.root]
    for axis, labels in spec:
        with (
            ctx.span("sj-step", axis=axis.value, labels=",".join(labels))
            if ctx is not None
            else _NULL_CM
        ):
            if labels:
                candidates = cols.posting(labels[0])
                for extra in labels[1:]:
                    m = cols.mask(extra)
                    candidates = [v for v in candidates if m[v]]
            else:
                candidates = range(cols.n)
            if axis is Axis.CHILD:
                if ctx is not None:
                    ctx.tick(len(candidates))
                current = cols.child_semijoin(current, candidates)
            else:
                targets = cols.descendant_semijoin(current, candidates)
                if axis is Axis.CHILD_STAR:
                    masks = [cols.mask(label) for label in labels]
                    stay = [v for v in current if all(m[v] for m in masks)]
                    targets = sorted(set(targets) | set(stay))
                current = [int(v) for v in targets]
            if ctx is not None:
                ctx.count("sj.frontier", len(current))
        if not current:
            break
    return set(current)


def _xpath_structural_join(expr, index):
    """Evaluate a label-only downward spine step by step, each Child+ /
    Child* step as a stack-based structural join over the label stream."""
    from repro.storage.structural_join import stack_structural_join

    spec = sj_spec(expr)
    if spec is None:  # pragma: no cover - guarded by applicable()
        raise QueryError("not a label-only downward spine")
    cols = getattr(index, "columns", None)
    if cols is not None:
        return _xpath_structural_join_columns(spec, index, cols)
    ctx = _obs_current()
    tree = index.tree
    post = tree.post
    current: list[int] = [tree.root]
    for axis, labels in spec:
        with (
            ctx.span("sj-step", axis=axis.value, labels=",".join(labels))
            if ctx is not None
            else _NULL_CM
        ):
            if labels:
                candidates = index.nodes_with_label(labels[0])
                for extra in labels[1:]:
                    allowed = set(index.nodes_with_label(extra))
                    candidates = [v for v in candidates if v in allowed]
            else:
                candidates = list(range(tree.n))
            if axis is Axis.CHILD:
                frontier = set(current)
                if ctx is not None:
                    ctx.tick(len(candidates))
                current = [c for c in candidates if tree.parent[c] in frontier]
            else:
                anc_stream = [(u, post[u]) for u in current]
                desc_stream = [(d, post[d]) for d in candidates]
                joined = stack_structural_join(anc_stream, desc_stream)
                targets = {d[0] for _a, d in joined}
                if axis is Axis.CHILD_STAR:
                    targets.update(set(candidates) & set(current))
                current = sorted(targets)
            if ctx is not None:
                ctx.count("sj.frontier", len(current))
        if not current:
            break
    return set(current)


def _xpath_cq_applicable(expr, _index) -> bool:
    from repro.xpath.translate import is_conjunctive

    return is_conjunctive(expr)


def _xpath_cq(expr, index):
    from repro.cq.yannakakis import yannakakis_unary
    from repro.xpath.translate import xpath_to_cq

    _touch(index, xpath_labels(expr))
    return yannakakis_unary(xpath_to_cq(expr), index.tree)


# ---------------------------------------------------------------------------
# twig strategies
# ---------------------------------------------------------------------------


def _twig_streams(pattern, index):
    """Candidate streams for a twig pattern: plain label partitions, or
    the arc-consistency-pruned columnar streams when columns are on."""
    cols = getattr(index, "columns", None)
    if cols is not None:
        streams = cols.twig_streams(pattern)
        ctx = _obs_current()
        if ctx is not None:
            ctx.count("twig.stream_elements", sum(len(s) for s in streams))
        return streams
    return index.twig_streams(pattern)


def _twig_twigstack(pattern, index):
    from repro.twigjoin.twigstack import twig_stack

    return twig_stack(pattern, index.tree, streams=_twig_streams(pattern, index))


def _twig_pathstack_applicable(pattern, _index) -> bool:
    return all(len(node.children) <= 1 for node in pattern.nodes)


def _twig_pathstack(pattern, index):
    from repro.twigjoin.pathstack import path_stack

    return path_stack(pattern, index.tree, streams=_twig_streams(pattern, index))


def _twig_binary(pattern, index):
    from repro.twigjoin.binaryjoin import binary_join_plan

    return binary_join_plan(
        pattern, index.tree, streams=_twig_streams(pattern, index)
    )


def _twig_ac(pattern, index):
    from repro.twigjoin.twigstack import holistic_via_arc_consistency

    _touch(index, [n.label for n in pattern.nodes if n.label != "*"])
    return holistic_via_arc_consistency(pattern, index.tree)


def _twig_yannakakis(pattern, index):
    from repro.cq.yannakakis import yannakakis

    _touch(index, [n.label for n in pattern.nodes if n.label != "*"])
    return yannakakis(pattern.to_cq(), index.tree)


# ---------------------------------------------------------------------------
# cq strategies
# ---------------------------------------------------------------------------


def _cq_backtracking(query, index):
    from repro.cq.naive import evaluate_backtracking

    _touch(index, cq_labels(query))
    return evaluate_backtracking(query, index.tree)


def _cq_yannakakis_applicable(query, _index) -> bool:
    from repro.cq.acyclic import is_acyclic

    return is_acyclic(query)


def _cq_yannakakis(query, index):
    from repro.cq.yannakakis import yannakakis

    _touch(index, cq_labels(query))
    return yannakakis(query, index.tree)


def _cq_treewidth(query, index):
    from repro.cq.boundedtw import evaluate_bounded_treewidth

    _touch(index, cq_labels(query))
    return evaluate_bounded_treewidth(query, index.tree)


def _cq_rewrite(query, index):
    from repro.rewrite import evaluate_via_rewriting

    _touch(index, cq_labels(query))
    return evaluate_via_rewriting(query, index.tree)


# ---------------------------------------------------------------------------
# datalog strategies
# ---------------------------------------------------------------------------


def _datalog_minoux(program, index):
    from repro.datalog.evaluate import evaluate

    _touch(index, datalog_labels(program))
    return evaluate(program, index.tree)


def _datalog_naive(program, index):
    from repro.datalog.evaluate import evaluate_naive

    _touch(index, datalog_labels(program))
    relations = evaluate_naive(program, index.tree)
    if program.query_pred is None:
        raise QueryError("program declares no query predicate")
    return relations.get(program.query_pred, set())


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------

STRATEGIES: dict[str, dict[str, Strategy]] = {}


def _traced_execute(
    kind: str, name: str, execute: Callable[[Any, Any], Any]
) -> Callable[[Any, Any], Any]:
    """Wrap an executor so every registered strategy emits a span and
    carries a ``strategy.<name>`` fault-injection site.

    When no observation context is active and no fault plan is armed
    this is two global reads and two None checks — the strategy's own
    fast path is untouched.
    """
    site = register_site(f"strategy.{name}", f"{kind} executor: {name}")

    def run(query: Any, index: Any) -> Any:
        faultpoint(site)
        ctx = _obs_current()
        if ctx is None:
            return execute(query, index)
        with ctx.span(f"strategy:{kind}:{name}"):
            answer = execute(query, index)
            ctx.count("strategy.executions")
            return answer

    run.__name__ = f"traced_{execute.__name__}"
    return run


def _register(strategy: Strategy) -> None:
    strategy = Strategy(
        strategy.kind,
        strategy.name,
        strategy.summary,
        strategy.applicable,
        _traced_execute(strategy.kind, strategy.name, strategy.execute),
    )
    STRATEGIES.setdefault(strategy.kind, {})[strategy.name] = strategy


for _s in (
    Strategy("xpath", "linear", "context-set evaluator (O(|Q|·||A||))",
             lambda e, i: not _has_position(e), _xpath_linear),
    Strategy("xpath", "denotational", "memoized denotational semantics",
             _always, _xpath_denotational),
    Strategy("xpath", "datalog", "translation to stratified monadic datalog",
             lambda e, i: not _has_position(e), _xpath_datalog),
    Strategy("xpath", "automaton", "bottom-up automaton run (downward fragment)",
             _xpath_automaton_applicable, _xpath_automaton),
    Strategy("xpath", "structural-join", "per-step structural joins on label streams",
             _xpath_structural_join_applicable, _xpath_structural_join),
    Strategy("xpath", "cq", "conjunctive fragment via Yannakakis",
             _xpath_cq_applicable, _xpath_cq),
    Strategy("twig", "twigstack", "holistic TwigStack", _always, _twig_twigstack),
    Strategy("twig", "pathstack", "PathStack (path patterns)",
             _twig_pathstack_applicable, _twig_pathstack),
    Strategy("twig", "binary", "binary structural-join plan", _always, _twig_binary),
    Strategy("twig", "ac", "arc-consistency + pointer enumeration",
             _always, _twig_ac),
    Strategy("twig", "yannakakis", "twig as acyclic CQ via Yannakakis",
             _always, _twig_yannakakis),
    Strategy("cq", "backtracking", "backtracking search", _always, _cq_backtracking),
    Strategy("cq", "yannakakis", "Yannakakis (acyclic queries)",
             _cq_yannakakis_applicable, _cq_yannakakis),
    Strategy("cq", "treewidth", "bounded-tree-width evaluation",
             _always, _cq_treewidth),
    Strategy("cq", "rewrite", "rewriting to a union of acyclic CQs",
             _always, _cq_rewrite),
    Strategy("datalog", "minoux", "TMNF → Horn-SAT → Minoux", _always, _datalog_minoux),
    Strategy("datalog", "naive", "naive fixpoint baseline", _always, _datalog_naive),
):
    _register(_s)


def strategy_names(kind: str) -> list[str]:
    """All registered strategy names for a query kind."""
    try:
        return list(STRATEGIES[kind])
    except KeyError:
        raise QueryError(f"unknown query kind {kind!r}") from None


def get_strategy(kind: str, name: str) -> Strategy:
    try:
        return STRATEGIES[kind][name]
    except KeyError:
        raise QueryError(
            f"unknown strategy {name!r} for kind {kind!r}; options: "
            f"{', '.join(strategy_names(kind))}"
        ) from None


def strategies_for(kind: str, query: Any, index: Any) -> list[Strategy]:
    """The registered strategies applicable to this query, in registry order."""
    return [
        s for s in STRATEGIES.get(kind, {}).values() if s.applicable(query, index)
    ]
