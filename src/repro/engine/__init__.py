"""Unified query engine: Database facade, DocumentIndex, Planner.

See docs/ENGINE.md for the architecture and the planner's heuristics,
docs/OBSERVABILITY.md for tracing (``trace=True``) and resource
governance (``deadline=``/``max_visited=``) on every query entry point,
and docs/ROBUSTNESS.md for the retry/fallback supervisor
(``retries=``/``on_error=``) and fault injection.
"""

from repro.engine.columns import ColumnStore, resolve_mode
from repro.engine.database import Database, evaluate_document
from repro.engine.index import DocumentIndex
from repro.engine.planner import Plan, PlanCache, Planner
from repro.engine.stats import Attempt, ExecutionStats, Result
from repro.engine.strategies import (
    STRATEGIES,
    Strategy,
    get_strategy,
    strategies_for,
    strategy_names,
)

__all__ = [
    "Attempt",
    "ColumnStore",
    "Database",
    "DocumentIndex",
    "ExecutionStats",
    "Plan",
    "PlanCache",
    "Planner",
    "Result",
    "STRATEGIES",
    "Strategy",
    "get_strategy",
    "strategies_for",
    "strategy_names",
    "evaluate_document",
    "resolve_mode",
]
