"""Unified query engine: Database facade, DocumentIndex, Planner.

See docs/ENGINE.md for the architecture and the planner's heuristics,
and docs/OBSERVABILITY.md for tracing (``trace=True``) and resource
governance (``deadline=``/``max_visited=``) on every query entry point.
"""

from repro.engine.database import Database
from repro.engine.index import DocumentIndex
from repro.engine.planner import Plan, Planner
from repro.engine.stats import ExecutionStats, Result
from repro.engine.strategies import (
    STRATEGIES,
    Strategy,
    get_strategy,
    strategies_for,
    strategy_names,
)

__all__ = [
    "Database",
    "DocumentIndex",
    "ExecutionStats",
    "Plan",
    "Planner",
    "Result",
    "STRATEGIES",
    "Strategy",
    "get_strategy",
    "strategies_for",
    "strategy_names",
]
