"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle any library-level failure while
letting genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParseError",
    "QueryError",
    "NotAcyclicError",
    "UnsupportedAxisError",
    "EvaluationError",
    "IntractableSignatureError",
    "ResourceBudgetExceeded",
    "StorageError",
    "CorpusError",
    "TransientError",
    "InjectedFault",
    "AllStrategiesFailedError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParseError(ReproError):
    """Raised when a query string or document cannot be parsed.

    Carries the offending position when known.
    """

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class QueryError(ReproError):
    """Raised when a query is structurally invalid (unknown relation,
    arity mismatch, unsafe rule, ...)."""


class NotAcyclicError(QueryError):
    """Raised when an algorithm that requires an acyclic query is handed
    a cyclic one (e.g. Yannakakis' algorithm)."""


class UnsupportedAxisError(QueryError):
    """Raised when an axis name is not recognised or not supported by the
    requested algorithm."""


class EvaluationError(ReproError):
    """Raised when query evaluation fails for reasons other than the
    query being unsatisfiable (which is a regular empty result)."""


class IntractableSignatureError(QueryError):
    """Raised when a polynomial-time algorithm is asked to run over an
    axis signature for which the problem is NP-complete (Theorem 6.8)
    and the caller did not opt into the exponential fallback."""


class ResourceBudgetExceeded(ReproError):
    """Raised when an evaluation attempt crosses a resource budget
    (wall-clock deadline or node-visit ceiling, see
    :class:`repro.obs.budget.ResourceBudget`).

    ``reason`` is ``"deadline"`` or ``"max_visited"``; ``limit`` is the
    configured ceiling and ``spent`` the amount consumed when the check
    fired.  The planner may catch this and fall back to the
    next-cheapest applicable strategy (recorded in
    ``ExecutionStats.fallback_from``).
    """

    def __init__(self, reason: str, limit, spent):
        super().__init__(
            f"resource budget exceeded ({reason}): spent {spent} of {limit}"
        )
        self.reason = reason
        self.limit = limit
        self.spent = spent


class StorageError(ReproError):
    """Raised when reading or writing a document file fails at the I/O
    layer (missing file, permission denied, undecodable bytes).  Wraps
    the underlying ``OSError`` so callers never see a raw one; the
    offending path is always in the message."""


class CorpusError(ReproError):
    """Raised when a corpus run cannot proceed as requested: the corpus
    directory is empty, a resume manifest disagrees with the corpus or
    the query it was started with, or a checkpoint/spill file fails its
    integrity check.  Per-shard *evaluation* failures never raise this —
    they are retried and, if exhausted, quarantined into a ``partial``
    report instead (see docs/ROBUSTNESS.md)."""


class TransientError(ReproError):
    """A failure that is expected to succeed on re-attempt (a flaky
    read, an injected transient fault).  The engine supervisor retries
    these up to its ``retries`` bound before treating the attempt as a
    hard failure — see docs/ROBUSTNESS.md."""


class InjectedFault(EvaluationError):
    """A deterministic fault injected by an active
    :class:`repro.faults.FaultPlan`.  Never raised in production —
    only when a plan is deliberately armed — but it derives from
    :class:`EvaluationError` so the supervisor and callers handle it
    exactly like a real evaluation failure.

    ``site`` names the injection site that tripped.
    """

    def __init__(self, site: str, message: str | None = None):
        super().__init__(message or f"injected fault at site {site!r}")
        self.site = site


class AllStrategiesFailedError(ReproError):
    """Every applicable strategy (and every retry) failed for one
    engine call running under ``on_error="fallback"``.

    ``attempts`` is the per-attempt record — ``(strategy, outcome,
    error)`` triples in execution order — and ``causes`` the caught
    exceptions, so the full failure chain survives into logs and tests.
    """

    def __init__(self, kind: str, query: str, attempts=(), causes=()):
        self.kind = kind
        self.query = query
        self.attempts = tuple(attempts)
        self.causes = tuple(causes)
        chain = "; ".join(
            f"{a[0]}: {a[2]}" if isinstance(a, tuple) else
            f"{a.strategy}: {a.error}"
            for a in self.attempts
        )
        super().__init__(
            f"all strategies failed for {kind} query {query!r}"
            + (f" — attempts: {chain}" if chain else "")
        )
