"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle any library-level failure while
letting genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParseError",
    "QueryError",
    "NotAcyclicError",
    "UnsupportedAxisError",
    "EvaluationError",
    "IntractableSignatureError",
    "ResourceBudgetExceeded",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParseError(ReproError):
    """Raised when a query string or document cannot be parsed.

    Carries the offending position when known.
    """

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class QueryError(ReproError):
    """Raised when a query is structurally invalid (unknown relation,
    arity mismatch, unsafe rule, ...)."""


class NotAcyclicError(QueryError):
    """Raised when an algorithm that requires an acyclic query is handed
    a cyclic one (e.g. Yannakakis' algorithm)."""


class UnsupportedAxisError(QueryError):
    """Raised when an axis name is not recognised or not supported by the
    requested algorithm."""


class EvaluationError(ReproError):
    """Raised when query evaluation fails for reasons other than the
    query being unsatisfiable (which is a regular empty result)."""


class IntractableSignatureError(QueryError):
    """Raised when a polynomial-time algorithm is asked to run over an
    axis signature for which the problem is NP-complete (Theorem 6.8)
    and the caller did not opt into the exponential fallback."""


class ResourceBudgetExceeded(ReproError):
    """Raised when an evaluation attempt crosses a resource budget
    (wall-clock deadline or node-visit ceiling, see
    :class:`repro.obs.budget.ResourceBudget`).

    ``reason`` is ``"deadline"`` or ``"max_visited"``; ``limit`` is the
    configured ceiling and ``spent`` the amount consumed when the check
    fired.  The planner may catch this and fall back to the
    next-cheapest applicable strategy (recorded in
    ``ExecutionStats.fallback_from``).
    """

    def __init__(self, reason: str, limit, spent):
        super().__init__(
            f"resource budget exceeded ({reason}): spent {spent} of {limit}"
        )
        self.reason = reason
        self.limit = limit
        self.spent = spent
