"""TwigStack-style holistic matching of twig patterns, and the paper's
arc-consistency reading of it (Section 6).

:func:`twig_stack` follows the two-phase architecture of [13]:

1. a single document-order sweep pushes elements onto one stack per
   pattern node (pointer to the parent stack top at push time); whenever
   a *leaf* element is pushed, the solutions of that leaf's root-to-leaf
   path are emitted through the pointers (as in PathStack),
2. the per-path solution lists are merge-joined on their shared prefix
   nodes into full twig matches.

Intermediate state is therefore bounded by the document depth plus the
per-path output — never by a cross-product of edge joins, which is what
the binary-join baseline of :mod:`repro.twigjoin.binaryjoin` suffers
(experiment E14).  ``/``-edges are checked during path emission; as in
the original TwigStack this can make path lists larger than the final
output (the known suboptimality for child edges).

:func:`holistic_via_arc_consistency` is the generalization the paper
advocates: compute the maximal arc-consistent pre-valuation and read the
matches out backtrack-free (Propositions 6.9/6.10).  It handles *any*
tree-shaped CQ over any axis signature, not just /-and-// twigs.
"""

from __future__ import annotations

from repro.consistency.enumerate import solutions_with_pointers
from repro.obs.context import current as _obs_current
from repro.twigjoin.pathstack import _streams
from repro.twigjoin.pattern import TwigPattern
from repro.trees.tree import Tree

__all__ = ["twig_stack", "holistic_via_arc_consistency", "TwigStats"]


class TwigStats:
    """Counters for experiment E14."""

    def __init__(self):
        self.path_solutions = 0
        self.merge_output = 0
        self.pushes = 0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"TwigStats(pushes={self.pushes}, paths={self.path_solutions}, "
            f"out={self.merge_output})"
        )


def twig_stack(
    pattern: TwigPattern,
    tree: Tree,
    stats: TwigStats | None = None,
    streams: list[list[int]] | None = None,
) -> set[tuple[int, ...]]:
    """All matches of the twig (tuples over pattern nodes in index order).

    ``streams`` lets callers supply pre-materialized per-node candidate
    streams (document order), e.g. from a cached label index.
    """
    ctx = _obs_current()
    stats = stats if stats is not None else TwigStats()
    nodes = pattern.nodes
    n_pat = len(nodes)
    parent = pattern.parent
    if streams is None:
        streams = _streams(pattern, tree)
    cursors = [0] * n_pat
    stacks: list[list[tuple[int, int]]] = [[] for _ in range(n_pat)]
    leaf_indices = [node.index for node in nodes if not node.children]
    # per-leaf path solutions, keyed by the path's pattern-node indices
    paths = {leaf: _root_path(pattern, leaf) for leaf in leaf_indices}
    path_solutions: dict[int, list[tuple[int, ...]]] = {
        leaf: [] for leaf in leaf_indices
    }

    def next_pre(i: int) -> int | None:
        if cursors[i] >= len(streams[i]):
            return None
        return streams[i][cursors[i]]

    def clean(v: int) -> None:
        for stack in stacks:
            while stack and tree.subtree_end[stack[-1][0]] <= v:
                stack.pop()

    def emit(leaf: int, elem: int, ptr: int) -> None:
        path = paths[leaf]
        k = len(path)
        partial = [0] * k

        def expand(i: int, e: int, p: int) -> None:
            partial[i] = e
            if i == 0:
                if nodes[path[0]].edge == "/" and e != tree.root:
                    return
                path_solutions[leaf].append(tuple(partial))
                stats.path_solutions += 1
                return
            edge = nodes[path[i]].edge
            parent_stack = stacks[path[i - 1]]
            for pos in range(p):
                pe, pp = parent_stack[pos]
                if pe >= e:
                    continue  # same element (pushed at the same pre): // is strict
                if edge == "/" and tree.parent[e] != pe:
                    continue
                expand(i - 1, pe, pp)

        expand(k - 1, elem, ptr)

    while True:
        best_i, best_v = -1, None
        for i in range(n_pat):
            v = next_pre(i)
            if v is not None and (best_v is None or v < best_v):
                best_i, best_v = i, v
        if best_v is None:
            break
        if ctx is not None:
            ctx.tick()
        clean(best_v)
        cursors[best_i] += 1
        p = parent[best_i]
        ptr = len(stacks[p]) if p >= 0 else 0
        stats.pushes += 1
        if best_i in path_solutions:
            emit(best_i, best_v, ptr)
            if nodes[best_i].children:  # pragma: no cover - leaves only
                stacks[best_i].append((best_v, ptr))
        else:
            stacks[best_i].append((best_v, ptr))

    # phase 2: merge-join the path solution lists on shared pattern nodes
    result = _merge_paths(
        n_pat, [(paths[leaf], path_solutions[leaf]) for leaf in leaf_indices]
    )
    stats.merge_output = len(result)
    if ctx is not None:
        ctx.count("twig.stack_pushes", stats.pushes)
        ctx.count("twig.path_solutions", stats.path_solutions)
        ctx.count("twig.merge_output", stats.merge_output)
        ctx.tick(stats.path_solutions + stats.merge_output)
    return result


def _root_path(pattern: TwigPattern, leaf: int) -> list[int]:
    path = [leaf]
    while pattern.parent[path[-1]] >= 0:
        path.append(pattern.parent[path[-1]])
    path.reverse()
    return path


def _merge_paths(
    n_pat: int, path_lists: list[tuple[list[int], list[tuple[int, ...]]]]
) -> set[tuple[int, ...]]:
    """Join per-path solutions on their shared pattern-node columns."""
    # accumulate partial assignments as dicts pattern-node -> tree node
    acc: list[dict[int, int]] = [{}]
    for path, solutions in path_lists:
        buckets: dict[tuple, list[tuple[int, ...]]] = {}
        # join keys: pattern nodes of this path already bound in acc
        bound = set(acc[0]) if acc else set()
        keys = [i for i, q in enumerate(path) if q in bound]
        for sol in solutions:
            buckets.setdefault(tuple(sol[i] for i in keys), []).append(sol)
        new_acc: list[dict[int, int]] = []
        for assignment in acc:
            key = tuple(assignment[path[i]] for i in keys)
            for sol in buckets.get(key, ()):
                extended = dict(assignment)
                ok = True
                for q, e in zip(path, sol):
                    if extended.get(q, e) != e:
                        ok = False
                        break
                    extended[q] = e
                if ok:
                    new_acc.append(extended)
        acc = new_acc
        if not acc:
            return set()
    return {tuple(a[i] for i in range(n_pat)) for a in acc}


def holistic_via_arc_consistency(
    pattern: TwigPattern, tree: Tree
) -> set[tuple[int, ...]]:
    """Twig matching as the paper frames it: a maximal arc-consistent
    pre-valuation plus backtrack-free pointer enumeration (§6)."""
    cq = pattern.to_cq()
    return solutions_with_pointers(cq, tree)
