"""Twig patterns: node-labeled tree patterns with / and // edges.

Concrete syntax (a subset of conjunctive forward XPath)::

    //a[b]/c[.//d]//e

- ``/x``  — Child edge to a node labeled x,
- ``//x`` — Child+ (descendant) edge,
- ``[...]`` — a branch (the twig),
- a leading ``//`` anchors the root label anywhere in the tree; a
  leading ``/`` (or nothing) anchors it at the document root's label.

Every pattern node gets an index; matches are tuples of tree nodes, one
per pattern node, in index order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cq.query import ConjunctiveQuery
from repro.datalog.syntax import Atom
from repro.errors import ParseError
from repro.trees.structure import lab
from repro.trees.axes import Axis

__all__ = ["TwigPattern", "TwigNode", "parse_twig"]


@dataclass
class TwigNode:
    """One pattern node: a label test plus the edge type to its parent."""

    label: str
    edge: str  # "/" (Child) or "//" (Child+); the root's edge anchors it
    children: list["TwigNode"] = field(default_factory=list)
    index: int = -1


class TwigPattern:
    """A rooted twig; nodes are indexed in pre-order."""

    def __init__(self, root: TwigNode):
        self.root = root
        self.nodes: list[TwigNode] = []
        stack = [root]
        while stack:
            node = stack.pop()
            node.index = len(self.nodes)
            self.nodes.append(node)
            stack.extend(reversed(node.children))
        self.parent: list[int] = [-1] * len(self.nodes)
        for node in self.nodes:
            for child in node.children:
                self.parent[child.index] = node.index

    def __len__(self) -> int:
        return len(self.nodes)

    def paths(self) -> list[list[int]]:
        """Root-to-leaf paths as lists of node indices."""
        out: list[list[int]] = []

        stack: list[tuple[TwigNode, list[int]]] = [(self.root, [self.root.index])]
        while stack:
            node, path = stack.pop()
            if not node.children:
                out.append(path)
            for child in reversed(node.children):
                stack.append((child, path + [child.index]))
        return out

    def to_cq(self) -> ConjunctiveQuery:
        """The equivalent conjunctive query (head = all pattern nodes).

        A ``//``-anchored root is unconstrained; a ``/``-anchored root
        must be the document root.
        """
        atoms: list[Atom] = []
        names = [f"q{i}" for i in range(len(self.nodes))]
        for node in self.nodes:
            if node.label != "*":
                atoms.append(Atom(lab(node.label), (names[node.index],)))
            p = self.parent[node.index]
            if p < 0:
                if node.edge == "/":
                    atoms.append(Atom("Root", (names[node.index],)))
                continue
            axis = Axis.CHILD if node.edge == "/" else Axis.CHILD_PLUS
            atoms.append(Atom(axis.value, (names[p], names[node.index])))
        if not atoms:
            atoms.append(Atom("Dom", (names[0],)))
        return ConjunctiveQuery(tuple(names), tuple(atoms)).validate()

    def __str__(self) -> str:
        def render(node: TwigNode) -> str:
            out = node.edge + node.label
            branches, spine = node.children[:-1], node.children[-1:]
            if len(node.children) > 1:
                branches = node.children[:-1]
            out += "".join(f"[{render(b).lstrip('/')}]" if b.edge == "/" else f"[.{render(b)}]" for b in branches)
            for s in spine:
                out += render(s)
            return out

        return render(self.root)


def parse_twig(text: str) -> TwigPattern:
    """Parse the twig syntax described in the module docstring."""
    pos = 0
    n = len(text)

    def parse_edge(default: str) -> str:
        nonlocal pos
        if text.startswith("//", pos):
            pos += 2
            return "//"
        if text.startswith("/", pos):
            pos += 1
            return "/"
        if text.startswith(".//", pos):
            pos += 3
            return "//"
        if text.startswith("./", pos):
            pos += 2
            return "/"
        return default

    def parse_label() -> str:
        nonlocal pos
        start = pos
        while pos < n and (text[pos].isalnum() or text[pos] in "_-*@."):
            pos += 1
        if start == pos:
            raise ParseError(f"expected label in twig", position=pos)
        return text[start:pos]

    def parse_node(default_edge: str) -> TwigNode:
        nonlocal pos
        edge = parse_edge(default_edge)
        node = TwigNode(parse_label(), edge)
        # branches
        while pos < n and text[pos] == "[":
            pos += 1
            node.children.append(parse_node("/"))
            if pos >= n or text[pos] != "]":
                raise ParseError("unbalanced [ in twig", position=pos)
            pos += 1
        # spine continuation
        if pos < n and text[pos] == "/":
            node.children.append(parse_node("/"))
        return node

    root = parse_node("/")
    if pos != n:
        raise ParseError(f"trailing twig input {text[pos:]!r}", position=pos)
    return TwigPattern(root)
