"""PathStack [Bruno et al. 2002] for path patterns.

One stack per pattern node; elements are pushed in global document
order, each carrying a pointer to the top of its parent's stack at push
time.  Stacks always hold chains of nested intervals, and solutions are
read out through the pointers whenever a leaf element is pushed — no
intermediate result lists (the contrast measured in E14).

Intervals are (pre, subtree_end) pairs, so containment and disjointness
are comparable in one coordinate system: a contains v iff
``a.pre < v.pre < a.end``; a is finished before v iff ``a.end <= v.pre``.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.obs.context import current as _obs_current
from repro.twigjoin.pattern import TwigPattern
from repro.trees.tree import Tree

__all__ = ["path_stack"]


def _streams(pattern: TwigPattern, tree: Tree) -> list[list[int]]:
    """Per pattern node, the matching tree nodes in document order."""
    out = []
    for node in pattern.nodes:
        if node.label == "*":
            out.append(list(tree.nodes()))
        else:
            out.append(list(tree.nodes_with_label(node.label)))
    return out


def path_stack(
    pattern: TwigPattern,
    tree: Tree,
    streams: list[list[int]] | None = None,
) -> set[tuple[int, ...]]:
    """All matches of a *path* pattern (each pattern node ≤ 1 child).

    Returns tuples of tree nodes, one per pattern node in index order.
    ``streams`` optionally supplies pre-materialized candidate streams.
    """
    chain = [pattern.root]
    while chain[-1].children:
        if len(chain[-1].children) > 1:
            raise QueryError("path_stack needs a path pattern; use twig_stack")
        chain.append(chain[-1].children[0])
    order = [node.index for node in chain]
    k = len(order)
    position_of = {idx: i for i, idx in enumerate(order)}

    ctx = _obs_current()
    pushes = 0
    if streams is None:
        streams = _streams(pattern, tree)
    cursors = [0] * len(pattern.nodes)
    # stacks[i]: list of (tree_node, pointer into stacks[i-1] at push time)
    stacks: list[list[tuple[int, int]]] = [[] for _ in range(k)]
    results: set[tuple[int, ...]] = set()

    def next_pre(i: int) -> int | None:
        idx = order[i]
        if cursors[idx] >= len(streams[idx]):
            return None
        return streams[idx][cursors[idx]]

    def clean(v: int) -> None:
        for stack in stacks:
            while stack and tree.subtree_end[stack[-1][0]] <= v:
                stack.pop()

    def emit(leaf_elem: int, leaf_ptr: int) -> None:
        """Enumerate all chains ending at the freshly pushed leaf element."""
        partial: list[int] = [0] * k

        def expand(i: int, elem: int, ptr: int) -> None:
            partial[i] = elem
            if i == 0:
                if chain[0].edge == "/" and elem != tree.root:
                    return
                results.add(tuple(partial))
                return
            edge = chain[i].edge
            for pos in range(ptr):
                parent_elem, parent_ptr = stacks[i - 1][pos]
                if parent_elem >= elem:
                    continue  # // and / are strict: skip the element itself
                if edge == "/" and tree.parent[elem] != parent_elem:
                    continue
                expand(i - 1, parent_elem, parent_ptr)

        expand(k - 1, leaf_elem, leaf_ptr)

    while True:
        # pick the pattern node whose next element is globally smallest
        best_i, best_v = -1, None
        for i in range(k):
            v = next_pre(i)
            if v is not None and (best_v is None or v < best_v):
                best_i, best_v = i, v
        if best_v is None or next_pre(k - 1) is None:
            break
        if ctx is not None:
            ctx.tick()
        pushes += 1
        clean(best_v)
        idx = order[best_i]
        cursors[idx] += 1
        ptr = len(stacks[best_i - 1]) if best_i > 0 else 0
        if best_i == k - 1:
            emit(best_v, ptr)
            # leaf elements never serve as ancestors of later leaf elements
            # in a path match, so they are not kept on the stack
        else:
            stacks[best_i].append((best_v, ptr))
    if ctx is not None:
        ctx.count("pathstack.pushes", pushes)
        ctx.count("pathstack.solutions", len(results))
    return results
