"""The binary structural-join baseline for twig matching (Section 2 + 6).

Before holistic twig joins, twigs were evaluated one edge at a time:
each pattern edge is a structural join, and partial matches are
materialized between joins.  Output-equivalent to TwigStack, but the
intermediate relations can be much larger than the final result — the
asymmetry experiment E14 measures via :class:`JoinPlanStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.twigjoin.pathstack import _streams
from repro.twigjoin.pattern import TwigPattern
from repro.trees.tree import Tree

__all__ = ["binary_join_plan", "JoinPlanStats"]


@dataclass
class JoinPlanStats:
    """Intermediate-result accounting for one plan execution."""

    intermediate_sizes: list[int] = field(default_factory=list)

    @property
    def max_intermediate(self) -> int:
        return max(self.intermediate_sizes, default=0)

    @property
    def total_intermediate(self) -> int:
        return sum(self.intermediate_sizes)


def binary_join_plan(
    pattern: TwigPattern,
    tree: Tree,
    stats: JoinPlanStats | None = None,
    streams: list[list[int]] | None = None,
) -> set[tuple[int, ...]]:
    """Evaluate the twig edge by edge in pattern pre-order, materializing
    the partial-match relation after every structural join.

    ``streams`` optionally supplies pre-materialized candidate streams.
    """
    stats = stats if stats is not None else JoinPlanStats()
    if streams is None:
        streams = _streams(pattern, tree)
    nodes = pattern.nodes

    # partial matches over pattern nodes 0..i (pre-order means each new
    # node's parent is already bound)
    root_stream = streams[0]
    if nodes[0].edge == "/":
        root_stream = [v for v in root_stream if v == tree.root]
    partial: list[tuple[int, ...]] = [(v,) for v in root_stream]
    stats.intermediate_sizes.append(len(partial))

    for i in range(1, len(nodes)):
        p = pattern.parent[i]
        child_edge = nodes[i].edge
        # index the candidate children once; then one pass over partials
        candidates = streams[i]
        new_partial: list[tuple[int, ...]] = []
        if child_edge == "/":
            by_parent: dict[int, list[int]] = {}
            for c in candidates:
                by_parent.setdefault(tree.parent[c], []).append(c)
            for row in partial:
                for c in by_parent.get(row[p], ()):
                    new_partial.append(row + (c,))
        else:
            for row in partial:
                anchor = row[p]
                end = tree.subtree_end[anchor]
                for c in candidates:
                    if anchor < c < end:
                        new_partial.append(row + (c,))
        partial = new_partial
        stats.intermediate_sizes.append(len(partial))
    return set(partial)
