"""Holistic twig joins (Section 6, [Bruno–Koudas–Srivastava 2002]).

The paper's point: holistic twig joins are a special case of
arc-consistency-based constraint processing.  This package implements
both sides of that connection:

- :class:`~repro.twigjoin.pattern.TwigPattern` — tree patterns with
  ``/`` (Child) and ``//`` (Child+) edges, convertible to CQs,
- :func:`~repro.twigjoin.pathstack.path_stack` — PathStack for path
  patterns (stacks of (pre, post) intervals with parent pointers),
- :func:`~repro.twigjoin.twigstack.twig_stack` — TwigStack with the
  getNext head that only pushes elements with full twig support on
  ``//``-edges (the classic suboptimality on ``/``-edges is preserved
  and measured in experiment E14),
- :func:`~repro.twigjoin.twigstack.holistic_via_arc_consistency` — the
  paper's reading: maximal arc-consistent pre-valuation + pointer-based
  enumeration (Propositions 6.9/6.10),
- :func:`~repro.twigjoin.binaryjoin.binary_join_plan` — the baseline:
  one structural join per pattern edge with materialized intermediates.
"""

from repro.twigjoin.pattern import TwigPattern, parse_twig
from repro.twigjoin.pathstack import path_stack
from repro.twigjoin.twigstack import twig_stack, holistic_via_arc_consistency
from repro.twigjoin.binaryjoin import binary_join_plan, JoinPlanStats
from repro.twigjoin.optimal import twig_stack_optimal

__all__ = [
    "TwigPattern",
    "parse_twig",
    "path_stack",
    "twig_stack",
    "holistic_via_arc_consistency",
    "binary_join_plan",
    "JoinPlanStats",
    "twig_stack_optimal",
]
