"""TwigStack with the getNext support filter ([13], Algorithm 2).

:func:`twig_stack_optimal` implements the full TwigStack head: an
element of pattern node q is pushed only when

- its interval can still contain the current head elements of *all* of
  q's pattern children (the ``getNext`` recursion advances cursors past
  elements that cannot), and
- its parent's stack is nonempty (it has ancestor support), unless q is
  the pattern root.

For twigs whose edges are all ``//``, this makes every pushed element
part of at least one match — the *optimality* result of [13], which the
paper's Section 6 reinterprets as arc-consistency.  ``/``-edges are
checked during path emission, so output is always correct; on them the
filter is (provably, [13]) not airtight — the suboptimality the E14
benchmark quantifies against :func:`repro.twigjoin.twigstack.twig_stack`
(no filter) and the AC evaluator (globally consistent).
"""

from __future__ import annotations

from repro.twigjoin.pathstack import _streams
from repro.twigjoin.pattern import TwigPattern
from repro.twigjoin.twigstack import TwigStats, _merge_paths, _root_path
from repro.trees.tree import Tree

__all__ = ["twig_stack_optimal"]

_INF = float("inf")


def twig_stack_optimal(
    pattern: TwigPattern, tree: Tree, stats: TwigStats | None = None
) -> set[tuple[int, ...]]:
    """All matches of the twig, with the TwigStack getNext filter."""
    stats = stats if stats is not None else TwigStats()
    nodes = pattern.nodes
    n_pat = len(nodes)
    parent = pattern.parent
    children: list[list[int]] = [[] for _ in range(n_pat)]
    for i in range(n_pat):
        if parent[i] >= 0:
            children[parent[i]].append(i)

    streams = _streams(pattern, tree)
    cursors = [0] * n_pat
    stacks: list[list[tuple[int, int]]] = [[] for _ in range(n_pat)]

    leaf_indices = [i for i in range(n_pat) if not children[i]]
    paths = {leaf: _root_path(pattern, leaf) for leaf in leaf_indices}
    path_solutions: dict[int, list[tuple[int, ...]]] = {
        leaf: [] for leaf in leaf_indices
    }

    def eof(q: int) -> bool:
        return cursors[q] >= len(streams[q])

    def next_l(q: int):
        return streams[q][cursors[q]] if not eof(q) else _INF

    def next_r(q: int):
        return tree.subtree_end[streams[q][cursors[q]]] if not eof(q) else _INF

    def advance(q: int) -> None:
        cursors[q] += 1

    def get_next(q: int) -> int:
        """The TwigStack head: a pattern node whose current element is
        safe to act on (push or skip).

        An exhausted subtree below qi means no *new* qi element can ever
        complete a match (the twig is conjunctive), so such a child just
        contributes next_l = ∞ — which drains q as well — instead of
        being bubbled up; only if every branch is dead does an exhausted
        node escape to the main loop (which then stops).
        """
        if not children[q]:
            return q
        n_min = n_max = -1
        for qi in children[q]:
            ni = get_next(qi)
            if ni != qi and not eof(ni):
                return ni
            # ni == qi (extendable) or ni is an exhausted descendant:
            # either way qi is summarized by its head position (∞ when
            # dead — get_next(qi) has already drained qi in that case)
            if n_min < 0 or next_l(qi) < next_l(n_min):
                n_min = qi
            if n_max < 0 or next_l(qi) > next_l(n_max):
                n_max = qi
        # skip q-elements that close before the farthest child head
        while next_r(q) < next_l(n_max):
            advance(q)
        if next_l(q) < next_l(n_min):
            return q
        return n_min

    def clean(stack: list, v: int) -> None:
        while stack and tree.subtree_end[stack[-1][0]] <= v:
            stack.pop()

    def emit(leaf: int, elem: int, ptr: int) -> None:
        path = paths[leaf]
        k = len(path)
        partial = [0] * k

        def expand(i: int, e: int, p: int) -> None:
            partial[i] = e
            if i == 0:
                if nodes[path[0]].edge == "/" and e != tree.root:
                    return
                path_solutions[leaf].append(tuple(partial))
                stats.path_solutions += 1
                return
            edge = nodes[path[i]].edge
            parent_stack = stacks[path[i - 1]]
            for pos in range(p):
                pe, pp = parent_stack[pos]
                if pe >= e:
                    continue
                if edge == "/" and tree.parent[e] != pe:
                    continue
                expand(i - 1, pe, pp)

        expand(k - 1, elem, ptr)

    def end() -> bool:
        return all(eof(leaf) for leaf in leaf_indices)

    while not end():
        q = get_next(0)
        if eof(q):
            break  # no further progress possible anywhere
        v = streams[q][cursors[q]]
        p = parent[q]
        if p >= 0:
            clean(stacks[p], v)
        if p < 0 or stacks[p]:
            clean(stacks[q], v)
            ptr = len(stacks[p]) if p >= 0 else 0
            stats.pushes += 1
            if q in path_solutions:  # leaf: emit and discard
                emit(q, v, ptr)
            else:
                stacks[q].append((v, ptr))
        advance(q)

    result = _merge_paths(
        n_pat, [(paths[leaf], path_solutions[leaf]) for leaf in leaf_indices]
    )
    stats.merge_output = len(result)
    return result
