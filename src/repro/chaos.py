"""The chaos differential harness (docs/ROBUSTNESS.md).

The safety contract this module enforces end-to-end: **under any single
injected fault, at any registered site, the library either returns the
exact clean answer or raises a typed** :class:`~repro.errors.ReproError`
— never a wrong answer, never a foreign exception.

:func:`chaos_sweep` runs a seeded matrix of documents × queries ×
single-fault scenarios covering *every* registered injection site
(:func:`repro.faults.registered_sites`), differentially comparing each
faulted run against its clean twin.  Each scenario's outcome is one of:

``match``
    The fault plan was armed but the rule never tripped (the chosen
    strategy never reached that site) — answer equals the clean run.
``recovered``
    The rule tripped and the run still produced the clean answer: the
    supervisor retried a transient, fell back past a poisoned strategy,
    or a latency fault merely delayed the call.
``typed-error``
    The run failed with a :class:`~repro.errors.ReproError` subclass —
    an acceptable, contractual failure.
``degraded``
    Recovery-mode ingestion kept a repaired (smaller) document and said
    so through :class:`~repro.trees.xmlio.ParseWarning` records.
``wrong-answer`` / ``foreign-error``
    Contract violations.  :meth:`ChaosReport.ok` is False if any occur.

The sweep is what the ``repro chaos`` subcommand and the
``chaos-smoke`` CI job run; ``fast=True`` trims the matrix (fewer
queries and fault kinds per site) while still touching every site.
"""

from __future__ import annotations

import fnmatch
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field

from repro.errors import QueryError, ReproError
from repro.faults import FaultPlan, registered_sites
from repro.engine.database import Database
from repro.engine.stats import ExecutionStats

# sites register at the instrumented module's import; the sweep matrix
# snapshots registered_sites(), so every instrumented module must be
# imported before generation — not left to lazy, path-dependent imports
import repro.corpus  # noqa: F401,E402
import repro.engine.columns  # noqa: F401,E402
import repro.engine.index  # noqa: F401,E402
import repro.engine.planner  # noqa: F401,E402
import repro.engine.strategies  # noqa: F401,E402
import repro.service.app  # noqa: F401,E402
import repro.storage.diskstore  # noqa: F401,E402
import repro.storage.structural_join  # noqa: F401,E402
import repro.streaming.events  # noqa: F401,E402
import repro.trees.xmlio  # noqa: F401,E402

__all__ = [
    "ChaosOutcome",
    "ChaosReport",
    "ChaosScenario",
    "ServiceHarness",
    "chaos_sweep",
    "default_documents",
    "default_queries",
    "fallback_demos",
]

# ---------------------------------------------------------------------------
# the corpus: documents and queries the scenarios run over
# ---------------------------------------------------------------------------


def default_documents() -> dict[str, str]:
    """Small deterministic documents exercising depth, width and labels."""
    deep = "".join(f"<d{i % 3}>" for i in range(12))
    deep += "<b/>" + "".join(f"</d{i % 3}>" for i in reversed(range(12)))
    wide = "".join(
        f"<item><name/><keyword/></item>" if i % 3 else "<item><b/></item>"
        for i in range(8)
    )
    return {
        "tiny": "<a><b><c/></b><b/></a>",
        "deep": f"<a>{deep}</a>",
        "wide": f"<site><people>{wide}</people><b/></site>",
    }


def default_queries() -> list[tuple[str, str]]:
    """(kind, concrete syntax) pairs spanning every query language."""
    return [
        ("xpath", "Child+[lab() = b]"),
        ("xpath", "Child*[lab() = item]/Child[lab() = name]"),
        ("xpath", "Child[lab() = people]"),
        ("twig", "//item[keyword]"),
        ("twig", "//a//b"),
        ("cq", "ans() :- Child+(x, y), Lab:b(y)"),
        ("datalog", "Q(x) :- Lab:b(x).\n% query: Q"),
    ]


# engine-path sites are driven through a Database call; ingestion and
# storage sites each need their own driver (they fire before/without an
# engine call).  disk.write gets the crash-safety differential driver
# (a faulted dump must leave the previous version loadable), disk.verify
# rides the load driver (the checksum check sits on the load path).
_INGESTION_SITES = (
    "xml.parse", "stream.events", "disk.read", "disk.write", "disk.verify",
)

# HTTP-boundary sites live in the request path itself (body decode,
# dispatch, admission, breaker check), so only a request against a live
# server can reach them — they share one in-process server per sweep
# (boot-per-scenario when run_scenario is called directly).
# service.drain fires during shutdown and gets its own driver with a
# throwaway server per scenario (the drain kills it).
_SERVICE_SITES = (
    "service.decode", "service.handler", "service.admission",
    "service.breaker", "service.drain",
)

# telemetry sites (trace sampling, the event-log writer) hold a
# *stricter* contract than the request-path service sites: a tripped
# fault must leave the response byte-identical to the clean run — even
# a typed error would mean telemetry failure leaked into a request.
# The only acceptable footprint is a counted drop.
_TELEMETRY_SITES = ("obs.sample", "obs.eventlog")

# corpus-pipeline sites are driven through a whole run_corpus call over
# a throwaway corpus built from default_documents(), compared byte-wise
# against an unfaulted serial run of the same corpus.  Quarantine is the
# one legitimate divergence ("degraded": recorded loss, never silent).
# corpus.worker additionally gets the kill-a-worker differential — a
# real SIGKILL mid-shard instead of an armed plan.
_CORPUS_SITES = (
    "corpus.split", "corpus.worker", "corpus.task", "corpus.merge",
    "corpus.checkpoint",
)


# ---------------------------------------------------------------------------
# scenarios and outcomes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChaosScenario:
    """One cell of the sweep matrix: a fault spec against one workload.

    ``strategy`` is ``"auto"`` except for ``strategy.<name>`` sites,
    which are driven with the explicit strategy so the site is
    guaranteed to be reached (the planner would otherwise never route
    some workloads through e.g. the naive datalog baseline).
    ``columns`` enables the columnar backend on the *faulted* run only
    — the clean twin stays on the object path, so ``columns.*``
    scenarios double as a columns-vs-objects differential under fault."""

    site: str
    spec: str  # FaultRule spec, e.g. "strategy.linear:error@nth=1"
    doc: str  # document name from the corpus
    kind: str  # query kind ("xpath"/"twig"/"cq"/"datalog"), or "ingest"
    query: str  # concrete query syntax, or the ingestion driver name
    seed: int
    strategy: str = "auto"
    columns: bool = False

    def describe(self) -> str:
        return f"{self.spec} × {self.doc} × {self.kind}:{self.query!r}"


@dataclass(frozen=True)
class ChaosOutcome:
    scenario: ChaosScenario
    # match | recovered | typed-error | degraded | skipped
    #   | wrong-answer | foreign-error
    status: str
    detail: str = ""
    tripped: bool = False
    stats: "ExecutionStats | None" = None


@dataclass
class ChaosReport:
    """The sweep's verdict: outcomes plus the contract checks."""

    seed: int
    outcomes: list[ChaosOutcome] = field(default_factory=list)
    #: threads alive after the sweep that were not alive before it —
    #: the service-harness leak check; must be empty
    leaked_threads: list[str] = field(default_factory=list)

    def by_status(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    def violations(self) -> list[ChaosOutcome]:
        return [
            o for o in self.outcomes
            if o.status in ("wrong-answer", "foreign-error")
        ]

    def tripped_sites(self) -> set[str]:
        return {o.scenario.site for o in self.outcomes if o.tripped}

    def targeted_sites(self) -> set[str]:
        """The sites this sweep's scenarios set out to trip."""
        return {o.scenario.site for o in self.outcomes}

    def uncovered_sites(self) -> set[str]:
        """Targeted sites the sweep never actually tripped.  For an
        unfiltered, uncapped sweep this equals the registered sites
        minus the tripped ones; with ``sites=`` / ``max_scenarios=``
        restrictions only the sites actually swept are held to the
        coverage bar."""
        return self.targeted_sites() - self.tripped_sites()

    @property
    def ok(self) -> bool:
        return not self.violations() and not self.leaked_threads

    def summary(self) -> str:
        counts = ", ".join(
            f"{status}={count}" for status, count in sorted(self.by_status().items())
        )
        verdict = "OK" if self.ok else "CONTRACT VIOLATED"
        lines = [
            f"chaos sweep (seed={self.seed}): {len(self.outcomes)} scenarios, "
            f"{len(self.tripped_sites())} sites tripped — {counts} — {verdict}"
        ]
        for violation in self.violations():
            lines.append(
                f"  VIOLATION [{violation.status}] "
                f"{violation.scenario.describe()}: {violation.detail}"
            )
        for site in sorted(self.uncovered_sites()):
            lines.append(f"  note: site {site!r} never tripped in this sweep")
        if self.leaked_threads:
            lines.append(
                f"  LEAK: {len(self.leaked_threads)} thread(s) survived the "
                f"sweep: {', '.join(self.leaked_threads)}"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# scenario generation
# ---------------------------------------------------------------------------


def generate_scenarios(
    seed: int = 0,
    sites: "list[str] | None" = None,
    fast: bool = False,
) -> list[ChaosScenario]:
    """The deterministic sweep matrix for the given seed.

    Every registered (or requested) site appears; ``fast`` trims fault
    kinds to error+transient and one workload per site where the full
    sweep crosses all four kinds with several workloads.
    """
    documents = default_documents()
    queries = default_queries()
    if sites is None:
        all_sites = sorted(registered_sites())
    else:
        # each entry is an exact site name, a glob over the registry, or
        # a dotted prefix ("corpus" selects every corpus.* site)
        known = registered_sites()
        selected: set[str] = set()
        for pattern in sites:
            matched = [
                name
                for name in known
                if name == pattern
                or fnmatch.fnmatchcase(name, pattern)
                or name.startswith(pattern + ".")
            ]
            if not matched:
                raise QueryError(
                    f"unknown fault site {pattern!r}; "
                    "see repro.faults.registered_sites()"
                )
            selected.update(matched)
        all_sites = sorted(selected)
    kinds = ("error", "transient") if fast else ("error", "transient", "latency", "corrupt")
    scenarios: list[ChaosScenario] = []
    for site in all_sites:
        strategy = "auto"
        columns = site.startswith("columns.")
        if site in _INGESTION_SITES:
            workloads = [("ingest", site)]
        elif site in _CORPUS_SITES:
            workloads = [("corpus", site)]
        elif site in _SERVICE_SITES or site in _TELEMETRY_SITES:
            workloads = [("service", site)]
        elif columns:
            # the site only exists on the columnar backend; the chosen
            # workloads route through every column executor family
            workloads = [
                ("xpath", "Child+[lab() = b]"),
                ("twig", "//item[keyword]"),
            ]
        elif site.startswith("strategy."):
            # drive the site with its explicit strategy so it is
            # guaranteed to be reached, through queries of its kind
            strategy_kind = _strategy_kind(site)
            strategy = site.split(".", 1)[1]
            workloads = [
                (kind, query) for kind, query in queries if kind == strategy_kind
            ]
        else:
            workloads = list(queries)
        if fast and len(workloads) > 1:
            workloads = workloads[:1]
        doc_names = list(documents)
        if fast:
            doc_names = doc_names[:1]
        for fault_kind in kinds:
            spec = f"{site}:{fault_kind}@nth=1"
            # query.parse trips identically on every doc; service and
            # telemetry sites boot a live server per scenario — one doc
            # keeps that cheap
            single_doc = (
                site == "query.parse"
                or site in _SERVICE_SITES
                or site in _TELEMETRY_SITES
                or site in _CORPUS_SITES  # driver builds its own corpus
            )
            for doc in doc_names[:1] if single_doc else doc_names:
                for kind, query in workloads:
                    scenarios.append(
                        ChaosScenario(
                            site, spec, doc, kind, query, seed, strategy,
                            columns,
                        )
                    )
        if site == "corpus.worker":
            # the kill differential: no armed plan — a real SIGKILL of a
            # pool worker mid-shard, proving retry-on-a-fresh-worker
            # reconverges to the byte-identical serial answer
            scenarios.append(
                ChaosScenario(
                    site, "corpus.worker:kill", doc_names[0],
                    "corpus-kill", site, seed,
                )
            )
    return scenarios


def _strategy_kind(site: str) -> str:
    """Map a ``strategy.<name>`` site to the query kind that can reach it."""
    from repro.engine.strategies import STRATEGIES

    name = site.split(".", 1)[1]
    for kind, registry in STRATEGIES.items():
        if name in registry:
            return kind
    return "xpath"


# ---------------------------------------------------------------------------
# scenario execution
# ---------------------------------------------------------------------------


def run_scenario(
    scenario: ChaosScenario, harness: "ServiceHarness | None" = None
) -> ChaosOutcome:
    """Execute one scenario differentially against its clean twin.

    ``harness`` — an optional live :class:`ServiceHarness` reused across
    ``service.*`` scenarios; without one the driver boots (and tears
    down) a throwaway server per scenario.  ``service.drain`` always
    gets its own server, since the scenario kills it.
    """
    text = default_documents()[scenario.doc]
    if scenario.kind == "ingest":
        return _run_ingestion(scenario, text)
    if scenario.kind == "corpus":
        return _run_corpus(scenario)
    if scenario.kind == "corpus-kill":
        return _run_corpus_kill(scenario)
    if scenario.kind == "service":
        if scenario.site == "service.drain":
            return _run_drain(scenario, text)
        if scenario.site in _TELEMETRY_SITES:
            return _run_telemetry(scenario, text)
        return _run_service(scenario, text, harness=harness)
    return _run_engine(scenario, text)


def _run_engine(scenario: ChaosScenario, text: str) -> ChaosOutcome:
    try:
        clean = Database.from_xml(text).run(
            scenario.kind, scenario.query, scenario.strategy
        ).answer
    except ReproError as exc:
        # the workload itself is inapplicable to this explicit strategy
        # (e.g. pathstack on a branching twig) — nothing to differ with
        return ChaosOutcome(
            scenario, "skipped", f"clean run failed: {exc}"
        )
    # fresh: index.build must fire again; columns scenarios enable the
    # columnar backend here only, so the comparison below is also a
    # columns-vs-objects differential under fault
    db = Database.from_xml(
        text, columns="on" if scenario.columns else None
    )
    with FaultPlan([scenario.spec], seed=scenario.seed) as plan:
        try:
            result = db.run(
                scenario.kind, scenario.query, scenario.strategy,
                retries=1, on_error="fallback",
            )
        except ReproError as exc:
            return ChaosOutcome(
                scenario, "typed-error", f"{type(exc).__name__}: {exc}",
                tripped=bool(plan.trips),
            )
        except Exception as exc:  # noqa: BLE001 - the contract check itself
            return ChaosOutcome(
                scenario, "foreign-error", f"{type(exc).__name__}: {exc}",
                tripped=bool(plan.trips),
            )
    if result.answer != clean:
        return ChaosOutcome(
            scenario, "wrong-answer",
            f"faulted answer {sorted(result.answer)!r} != clean "
            f"{sorted(clean)!r}",
            tripped=bool(plan.trips), stats=result.stats,
        )
    status = "recovered" if plan.trips else "match"
    return ChaosOutcome(
        scenario, status, tripped=bool(plan.trips), stats=result.stats
    )


def _run_ingestion(scenario: ChaosScenario, text: str) -> ChaosOutcome:
    if scenario.site == "xml.parse":
        return _run_xml_parse(scenario, text)
    if scenario.site == "stream.events":
        return _run_stream_events(scenario, text)
    if scenario.site == "disk.write":
        return _run_disk_write(scenario, text)
    # disk.read and disk.verify both sit on the load path
    return _run_disk_read(scenario, text)


def _retrying(scenario: ChaosScenario, action):
    """Run ``action`` under the armed plan, retrying one transient —
    the harness-level analogue of the engine supervisor's retry policy.

    Returns ``(value, plan, status)`` where status is None on success.
    """
    from repro.errors import TransientError

    with FaultPlan([scenario.spec], seed=scenario.seed) as plan:
        for attempt in (0, 1):
            try:
                return action(), plan, None
            except TransientError as exc:
                if attempt == 1:
                    return None, plan, ChaosOutcome(
                        scenario, "typed-error",
                        f"TransientError: {exc}", tripped=True,
                    )
            except ReproError as exc:
                return None, plan, ChaosOutcome(
                    scenario, "typed-error", f"{type(exc).__name__}: {exc}",
                    tripped=bool(plan.trips),
                )
            except Exception as exc:  # noqa: BLE001
                return None, plan, ChaosOutcome(
                    scenario, "foreign-error", f"{type(exc).__name__}: {exc}",
                    tripped=bool(plan.trips),
                )
    return None, plan, None  # pragma: no cover - loop always returns


def _run_xml_parse(scenario: ChaosScenario, text: str) -> ChaosOutcome:
    from repro.trees.xmlio import parse_xml, to_xml

    clean = to_xml(parse_xml(text))
    recover = "corrupt" in scenario.spec  # corrupt runs exercise recovery
    warnings: list = []

    def action():
        return parse_xml(text, recover=recover, warnings=warnings)

    tree, plan, failure = _retrying(scenario, action)
    if failure is not None:
        return failure
    faulted = to_xml(tree)
    if faulted == clean:
        status = "recovered" if plan.trips else "match"
        return ChaosOutcome(scenario, status, tripped=bool(plan.trips))
    if recover and plan.trips:
        # recovery mode legitimately keeps a repaired smaller document —
        # but it must say so, and what it kept must round-trip strictly
        round_trips = to_xml(parse_xml(faulted)) == faulted
        if warnings and round_trips:
            return ChaosOutcome(
                scenario, "degraded",
                f"{len(warnings)} repairs reported", tripped=True,
            )
        return ChaosOutcome(
            scenario, "wrong-answer",
            "recovered document differs without warnings "
            f"(round_trips={round_trips})",
            tripped=True,
        )
    return ChaosOutcome(
        scenario, "wrong-answer", "parsed tree differs from clean run",
        tripped=bool(plan.trips),
    )


def _run_stream_events(scenario: ChaosScenario, text: str) -> ChaosOutcome:
    from repro.streaming.events import xml_events

    clean = list(xml_events(text))

    def action():
        return list(xml_events(text))

    events, plan, failure = _retrying(scenario, action)
    if failure is not None:
        return failure
    if events != clean:
        return ChaosOutcome(
            scenario, "wrong-answer",
            f"faulted stream yielded {len(events)} events, clean "
            f"{len(clean)}",
            tripped=bool(plan.trips),
        )
    status = "recovered" if plan.trips else "match"
    return ChaosOutcome(scenario, status, tripped=bool(plan.trips))


def _run_disk_read(scenario: ChaosScenario, text: str) -> ChaosOutcome:
    from repro.storage.diskstore import dump_tree, load_tree
    from repro.trees.xmlio import parse_xml

    clean_tree = parse_xml(text)
    fd, path = tempfile.mkstemp(suffix=".rtre")
    os.close(fd)
    try:
        dump_tree(clean_tree, path)

        def action():
            return load_tree(path)

        tree, plan, failure = _retrying(scenario, action)
        if failure is not None:
            return failure
        if tree.label != clean_tree.label or tree.parent != clean_tree.parent:
            return ChaosOutcome(
                scenario, "wrong-answer", "loaded tree differs from dumped",
                tripped=bool(plan.trips),
            )
        status = "recovered" if plan.trips else "match"
        return ChaosOutcome(scenario, status, tripped=bool(plan.trips))
    finally:
        os.unlink(path)


def _run_disk_write(scenario: ChaosScenario, text: str) -> ChaosOutcome:
    """Crash-safety differential for ``disk.write``: dump a v1 store,
    then dump v2 under the armed plan.  A successful dump must load
    back as v2; a typed failure must leave the *previous* version (v1)
    loadable and no ``.tmp`` litter — anything else (a torn file, a
    clobbered destination) is a contract violation."""
    from repro.storage.diskstore import dump_tree, load_tree
    from repro.trees.xmlio import parse_xml

    v1 = parse_xml("<a><old/></a>")
    v2 = parse_xml(text)
    fd, path = tempfile.mkstemp(suffix=".rtre")
    os.close(fd)
    try:
        dump_tree(v1, path)

        def action():
            return dump_tree(v2, path)

        _, plan, failure = _retrying(scenario, action)
        if failure is not None and failure.status != "typed-error":
            return failure
        if os.path.exists(path + ".tmp"):
            return ChaosOutcome(
                scenario, "wrong-answer", "dump left its temp file behind",
                tripped=bool(plan.trips),
            )
        try:
            survivor = load_tree(path)
        except ReproError as exc:
            return ChaosOutcome(
                scenario, "wrong-answer",
                f"destination unloadable after faulted dump: {exc}",
                tripped=bool(plan.trips),
            )
        expected = v1 if failure is not None else v2
        which = "previous" if failure is not None else "new"
        if (
            survivor.label != expected.label
            or survivor.parent != expected.parent
        ):
            return ChaosOutcome(
                scenario, "wrong-answer",
                f"destination does not hold the {which} version",
                tripped=bool(plan.trips),
            )
        if failure is not None:
            return failure
        status = "recovered" if plan.trips else "match"
        return ChaosOutcome(scenario, status, tripped=bool(plan.trips))
    finally:
        os.unlink(path)
        try:
            os.unlink(path + ".tmp")
        except OSError:
            pass


def _chaos_corpus_dir(base: str) -> str:
    """Materialize default_documents() as a small on-disk corpus."""
    corpus = os.path.join(base, "corpus")
    os.makedirs(corpus)
    for name, text in sorted(default_documents().items()):
        with open(os.path.join(corpus, f"{name}.xml"), "w",
                  encoding="utf-8") as fh:
            fh.write(text)
    return corpus


_CORPUS_CHAOS_QUERY = ("xpath", "Child+[lab() = b]")


def _corpus_oracle(base: str, corpus: str) -> bytes:
    """The clean serial answer bytes for the chaos corpus."""
    from repro.corpus import run_corpus

    out = os.path.join(base, "clean.json")
    kind, query = _CORPUS_CHAOS_QUERY
    report = run_corpus(corpus, kind, query, out=out, workers=0,
                        shard_size=2, retries=0)
    if not report.ok:
        raise ReproError(f"clean corpus run not complete: {report.status}")
    with open(out, "rb") as fh:
        return fh.read()


def _run_corpus(scenario: ChaosScenario) -> ChaosOutcome:
    """Whole-pipeline differential for the ``corpus.*`` sites.

    Runs the full split→evaluate→checkpoint→merge pipeline inline
    (``workers=0`` — the supervisor's retry/quarantine path is identical
    and the armed plan's trips stay observable in-process) under the
    scenario's fault, then compares output bytes against a clean serial
    run.  ``degraded`` — a quarantined shard recorded in a ``partial``
    report — is the one tolerated divergence: loss, but never silent."""
    from repro.corpus import run_corpus

    kind, query = _CORPUS_CHAOS_QUERY
    with tempfile.TemporaryDirectory(prefix="chaos-corpus-") as base:
        corpus = _chaos_corpus_dir(base)
        clean = _corpus_oracle(base, corpus)
        out = os.path.join(base, "faulted.json")

        def action():
            return run_corpus(corpus, kind, query, out=out, workers=0,
                              shard_size=2, retries=1)

        report, plan, failure = _retrying(scenario, action)
        if failure is not None:
            return failure
        if not report.ok:
            quarantined = sorted(
                s.shard_id for s in report.shards
                if s.status == "quarantined"
            )
            if plan.trips:
                return ChaosOutcome(
                    scenario, "degraded",
                    f"shards {quarantined} quarantined (recorded, "
                    "partial output)", tripped=True,
                )
            return ChaosOutcome(
                scenario, "wrong-answer",
                f"shards {quarantined} quarantined without any trip",
            )
        with open(out, "rb") as fh:
            faulted = fh.read()
        if faulted != clean:
            return ChaosOutcome(
                scenario, "wrong-answer",
                "faulted corpus output differs from clean serial run",
                tripped=bool(plan.trips),
            )
        status = "recovered" if plan.trips else "match"
        return ChaosOutcome(scenario, status, tripped=bool(plan.trips))


def _run_corpus_kill(scenario: ChaosScenario) -> ChaosOutcome:
    """The kill-a-worker differential: SIGKILL the first pool worker the
    moment it spawns, then require the supervisor to detect the death,
    re-run the shard on a fresh worker, and converge on output bytes
    identical to the clean serial run — with the death *counted*."""
    import signal

    from repro.corpus import run_corpus

    kind, query = _CORPUS_CHAOS_QUERY
    with tempfile.TemporaryDirectory(prefix="chaos-corpus-kill-") as base:
        corpus = _chaos_corpus_dir(base)
        clean = _corpus_oracle(base, corpus)
        out = os.path.join(base, "killed.json")
        killed: "list[int]" = []

        def kill_first(shard_id: int, pid: int) -> None:
            if not killed:
                killed.append(pid)
                os.kill(pid, signal.SIGKILL)

        try:
            report = run_corpus(
                corpus, kind, query, out=out, workers=1, shard_size=2,
                retries=1, on_worker_spawn=kill_first,
            )
        except ReproError as exc:
            return ChaosOutcome(
                scenario, "typed-error", f"{type(exc).__name__}: {exc}",
                tripped=bool(killed),
            )
        except Exception as exc:  # noqa: BLE001 - the contract check itself
            return ChaosOutcome(
                scenario, "foreign-error", f"{type(exc).__name__}: {exc}",
                tripped=bool(killed),
            )
        if report.worker_deaths < 1:
            return ChaosOutcome(
                scenario, "wrong-answer",
                "SIGKILLed worker was never detected as dead",
                tripped=bool(killed),
            )
        if not report.ok:
            return ChaosOutcome(
                scenario, "degraded",
                f"run ended {report.status} after the kill", tripped=True,
            )
        with open(out, "rb") as fh:
            survived = fh.read()
        if survived != clean:
            return ChaosOutcome(
                scenario, "wrong-answer",
                "post-kill corpus output differs from clean serial run",
                tripped=True,
            )
        return ChaosOutcome(scenario, "recovered", tripped=True)


class ServiceHarness:
    """One live in-process HTTP server shared across ``service.*``
    scenarios — booting a threaded server per scenario dominated sweep
    time, and a reused server doubles as a leak check: after
    :meth:`close` no worker or handler thread may survive (the sweep
    asserts this with a before/after ``threading.enumerate()``).

    Stores are ingested once per document and reused; ingestion happens
    outside any armed plan, so harness setup can never trip a rule
    meant for the scenario's request.
    """

    def __init__(self, service=None) -> None:
        from repro.service.app import QueryService, make_server

        self.service = service if service is not None else QueryService()
        self.server = make_server(self.service)
        self.port = self.server.server_address[1]
        self.worker = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.worker.start()
        self._stores: dict[str, str] = {}

    def store_for(self, doc: str, text: str) -> str:
        """Ingest ``doc`` once (direct call, no HTTP); returns the store
        name.  Raises RuntimeError when ingestion itself fails."""
        if doc not in self._stores:
            name = f"chaos-{doc}"
            status, payload = self.service.ingest(name, text)
            if status != 201:
                raise RuntimeError(f"harness ingest failed: {payload}")
            self._stores[doc] = name
        return self._stores[doc]

    def post(self, store: str, body: str) -> "tuple[int, object]":
        import http.client
        import json

        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=30)
        try:
            conn.request(
                "POST", f"/stores/{store}/query", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            return response.status, json.loads(response.read().decode("utf-8"))
        finally:
            conn.close()

    def close(self, timeout: float = 10.0) -> None:
        self.server.shutdown()
        self.server.server_close()
        self.worker.join(timeout=timeout)


def _typed_error(payload: object) -> "dict | None":
    """The typed error body, if the payload carries a well-formed one."""
    error = payload.get("error") if isinstance(payload, dict) else None
    if isinstance(error, dict) and error.get("code") and error.get("type"):
        return error
    return None


def _run_service(
    scenario: ChaosScenario,
    text: str,
    harness: "ServiceHarness | None" = None,
) -> ChaosOutcome:
    """Drive a ``service.*`` site through a live in-process HTTP server.

    The faultpoints sit in the request path (body decode, dispatch,
    admission, breaker check), so no ``Database`` call can reach them.
    The driver takes a clean answer over a socket, arms the plan
    (arming is process-global, so the worker thread sees it) and
    re-issues the request.  A ``transient-failure`` response is retried
    once client-side — the HTTP analogue of the supervisor's retry leg;
    a typed error body counts as ``typed-error`` exactly like a raised
    :class:`ReproError` does.

    The clean request also resets per-store breaker failure counts
    (success closes the breaker), so state carried on a shared harness
    cannot bleed between scenarios.
    """
    import json

    owned = harness is None
    if owned:
        harness = ServiceHarness()
    body = json.dumps({"kind": "xpath", "query": "Child+[lab() = b]"})
    try:
        try:
            store = harness.store_for(scenario.doc, text)
        except RuntimeError as exc:
            return ChaosOutcome(scenario, "skipped", str(exc))
        status, clean = harness.post(store, body)
        if status != 200:
            return ChaosOutcome(
                scenario, "skipped", f"clean request failed: {clean}"
            )
        with FaultPlan([scenario.spec], seed=scenario.seed) as plan:
            try:
                status, payload = harness.post(store, body)
                error = _typed_error(payload)
                if error is not None and error["code"] == "transient-failure":
                    status, payload = harness.post(store, body)
            except Exception as exc:  # noqa: BLE001 - the contract check itself
                return ChaosOutcome(
                    scenario, "foreign-error", f"{type(exc).__name__}: {exc}",
                    tripped=bool(plan.trips),
                )
        tripped = bool(plan.trips)
        if status == 200 and isinstance(payload, dict) \
                and payload.get("answer") == clean["answer"]:
            return ChaosOutcome(
                scenario, "recovered" if tripped else "match", tripped=tripped
            )
        error = _typed_error(payload)
        if error is not None:
            return ChaosOutcome(
                scenario, "typed-error",
                f"HTTP {status} {error['code']}: {error.get('message', '')}",
                tripped=tripped,
            )
        if status == 200:
            return ChaosOutcome(
                scenario, "wrong-answer",
                f"faulted answer differs from clean {clean['answer']!r}",
                tripped=tripped,
            )
        return ChaosOutcome(
            scenario, "foreign-error",
            f"HTTP {status} without a typed error body: {payload!r}",
            tripped=tripped,
        )
    finally:
        if owned:
            harness.close()


def _run_drain(scenario: ChaosScenario, text: str) -> ChaosOutcome:
    """Drive ``service.drain``: the faultpoint fires inside graceful
    shutdown, so each scenario sacrifices its own server.  A drain
    fault must *degrade* — the drain reports dirty and closes
    immediately — never hang or escape untyped, and a request arriving
    during/after the drain must get the typed 503 ``draining``
    refusal either way."""
    import json

    harness = ServiceHarness()
    body = json.dumps({"kind": "xpath", "query": "Child+[lab() = b]"})
    try:
        try:
            store = harness.store_for(scenario.doc, text)
        except RuntimeError as exc:
            return ChaosOutcome(scenario, "skipped", str(exc))
        status, clean = harness.post(store, body)
        if status != 200:
            return ChaosOutcome(
                scenario, "skipped", f"clean request failed: {clean}"
            )
        with FaultPlan([scenario.spec], seed=scenario.seed) as plan:
            try:
                clean_drain = harness.service.shutdown(drain_s=0.5)
            except Exception as exc:  # noqa: BLE001 - must not escape
                return ChaosOutcome(
                    scenario, "foreign-error",
                    f"drain raised {type(exc).__name__}: {exc}",
                    tripped=bool(plan.trips),
                )
        tripped = bool(plan.trips)
        # the straggler check: a request after drain started must be
        # refused with the typed draining error, fault or no fault
        status, payload = harness.post(store, body)
        error = _typed_error(payload)
        if status != 503 or error is None or error.get("code") != "draining":
            return ChaosOutcome(
                scenario, "wrong-answer",
                f"request during drain got HTTP {status} {payload!r} "
                "instead of the typed 503 draining refusal",
                tripped=tripped,
            )
        if clean_drain:
            return ChaosOutcome(
                scenario, "recovered" if tripped else "match", tripped=tripped
            )
        return ChaosOutcome(
            scenario, "degraded",
            "drain fault degraded to an immediate (dirty) close",
            tripped=tripped,
        )
    finally:
        harness.close()


def _run_telemetry(scenario: ChaosScenario, text: str) -> ChaosOutcome:
    """Drive an ``obs.*`` telemetry site — the *strictest* contract in
    the sweep.

    Request-path service faults may surface as typed errors; telemetry
    faults may not surface **at all**: the faulted request must return
    HTTP 200 with an answer byte-identical to the clean twin, and the
    only permitted footprint is a counted drop (``obs.sample_dropped``
    for sampler faults, ``eventlog.dropped`` for writer faults).  A
    typed error here would mean observability failure leaked into a
    request — scored ``wrong-answer``, a contract violation.

    The driver boots its own harness with tracing fully enabled (an
    always-on sampler and an event log on a temp file) so both sites
    are actually reachable: the shared sweep harness runs with
    ``event_log=None`` and would never exercise ``obs.eventlog``.  The
    event log is flushed *inside* the armed plan — the write happens on
    a background thread, and the fault must trip before the plan
    disarms.
    """
    import json

    from repro.obs.events import EventLogWriter
    from repro.obs.metrics import METRICS
    from repro.obs.sampling import TraceSampler
    from repro.service.app import QueryService

    fd, log_path = tempfile.mkstemp(suffix=".jsonl", prefix="repro-chaos-")
    os.close(fd)
    event_log = EventLogWriter(log_path, max_bytes=1 << 20)
    harness = ServiceHarness(
        service=QueryService(sampler=TraceSampler(), event_log=event_log)
    )
    body = json.dumps({"kind": "xpath", "query": "Child+[lab() = b]"})

    def drops() -> int:
        snapshot = METRICS.snapshot()
        return (
            snapshot.get("obs.sample_dropped", 0)
            + snapshot.get("eventlog.dropped", 0)
        )

    try:
        try:
            store = harness.store_for(scenario.doc, text)
        except RuntimeError as exc:
            return ChaosOutcome(scenario, "skipped", str(exc))
        status, clean = harness.post(store, body)
        if status != 200:
            return ChaosOutcome(
                scenario, "skipped", f"clean request failed: {clean}"
            )
        event_log.flush()
        drops_before = drops()
        with FaultPlan([scenario.spec], seed=scenario.seed) as plan:
            try:
                status, payload = harness.post(store, body)
            except Exception as exc:  # noqa: BLE001 - the contract check itself
                return ChaosOutcome(
                    scenario, "foreign-error", f"{type(exc).__name__}: {exc}",
                    tripped=bool(plan.trips),
                )
            # the obs.eventlog faultpoint fires on the writer thread;
            # drain it before the plan disarms
            event_log.flush()
            tripped = bool(plan.trips)
        if status != 200 or not isinstance(payload, dict) \
                or payload.get("answer") != clean["answer"]:
            return ChaosOutcome(
                scenario, "wrong-answer",
                f"telemetry fault leaked into the response: "
                f"HTTP {status} {payload!r} (clean answer {clean['answer']!r})",
                tripped=tripped,
            )
        # latency faults merely stall the telemetry path; every other
        # kind must be accounted for as a drop
        if tripped and ":latency" not in scenario.spec and drops() <= drops_before:
            return ChaosOutcome(
                scenario, "wrong-answer",
                "telemetry fault tripped but no drop was counted",
                tripped=True,
            )
        return ChaosOutcome(
            scenario, "recovered" if tripped else "match", tripped=tripped
        )
    finally:
        harness.close()
        event_log.close()
        for stale in (log_path, log_path + ".1"):
            try:
                os.unlink(stale)
            except OSError:
                pass


# ---------------------------------------------------------------------------
# the sweep and the fallback demos
# ---------------------------------------------------------------------------


def chaos_sweep(
    seed: int = 0,
    sites: "list[str] | None" = None,
    fast: bool = False,
    max_scenarios: "int | None" = None,
) -> ChaosReport:
    """Run the full differential sweep; see the module docstring.

    Request-path ``service.*`` scenarios share one live server for the
    whole sweep (:class:`ServiceHarness`); ``service.drain`` scenarios
    boot their own, since the drain kills it.  Threads alive before the
    sweep are snapshot and compared after every server is closed — any
    survivor lands in :attr:`ChaosReport.leaked_threads` and fails
    :attr:`ChaosReport.ok`.
    """
    report = ChaosReport(seed=seed)
    scenarios = generate_scenarios(seed, sites=sites, fast=fast)
    if max_scenarios is not None:
        scenarios = scenarios[:max_scenarios]
    before = set(threading.enumerate())
    harness: "ServiceHarness | None" = None
    try:
        for scenario in scenarios:
            if (
                scenario.kind == "service"
                and scenario.site != "service.drain"
                and scenario.site not in _TELEMETRY_SITES
            ):
                if harness is None:
                    harness = ServiceHarness()
                report.outcomes.append(run_scenario(scenario, harness=harness))
            else:
                report.outcomes.append(run_scenario(scenario))
    finally:
        if harness is not None:
            harness.close()
        # daemon handler threads unwind asynchronously after the socket
        # closes — give them a bounded grace period before calling leak
        leaked: list[threading.Thread] = []
        deadline = time.monotonic() + 5.0
        while True:
            leaked = [
                t for t in threading.enumerate()
                if t not in before and t.is_alive()
            ]
            if not leaked or time.monotonic() >= deadline:
                break
            time.sleep(0.05)
        report.leaked_threads = [t.name for t in leaked]
    return report


def fallback_demos(seed: int = 0) -> dict[str, ExecutionStats]:
    """Per engine site: a successful supervised recovery, with its
    attempt chain — the planner's redundancy of algorithms (paper
    Section 7) demonstrated as fault tolerance.

    Strategy sites that the planner picks first for some workload get a
    hard error there (the supervisor blacklists the strategy and falls
    back to the next ranked one); strategy sites the planner never
    ranks first, and the setup sites (``index.build``,
    ``planner.plan``, ``query.parse``) plus ``join.merge``, get a
    transient instead (the supervisor retries the same route).  Every
    returned stats object has ≥ 2 attempts and the tripped site in
    ``stats.faults``.
    """
    documents = default_documents()
    demos: dict[str, ExecutionStats] = {}
    for site in registered_sites():
        # ingestion, HTTP-boundary, telemetry and corpus sites have no
        # engine attempt chain to demo; the sweep covers them with
        # their own drivers
        if (
            site in _INGESTION_SITES
            or site in _SERVICE_SITES
            or site in _TELEMETRY_SITES
            or site in _CORPUS_SITES
        ):
            continue
        if site.startswith("strategy."):
            kind = _strategy_kind(site)
            name = site.split(".", 1)[1]
            workloads = [q for k, q in default_queries() if k == kind]
            # a true fallback demo needs the planner to route through
            # the poisoned strategy; then error -> blacklist -> next
            stats = _demo(
                site, f"{site}:error@nth=1", kind, workloads, "auto",
                documents, seed, require_choice=name,
            )
            if stats is None:
                # never the planner's first choice: demo the retry leg
                stats = _demo(
                    site, f"{site}:transient@nth=1", kind, workloads, name,
                    documents, seed,
                )
        elif site.startswith("columns."):
            # column sites only exist on the columnar backend; these
            # workloads plan onto the column executors on every doc
            workloads = [
                "Child+[lab() = b]",
                "Child*[lab() = item]/Child[lab() = name]",
            ]
            stats = _demo(
                site, f"{site}:transient@nth=1", "xpath", workloads, "auto",
                documents, seed, columns=True,
            )
        else:
            workloads = [q for k, q in default_queries() if k == "xpath"]
            stats = _demo(
                site, f"{site}:transient@nth=1", "xpath", workloads, "auto",
                documents, seed,
            )
        if stats is not None:
            demos[site] = stats
    return demos


def _demo(
    site: str,
    spec: str,
    kind: str,
    workloads: list[str],
    strategy: str,
    documents: dict[str, str],
    seed: int,
    require_choice: "str | None" = None,
    columns: bool = False,
) -> "ExecutionStats | None":
    """First workload where the fault trips and the call still succeeds
    with a ≥ 2-entry attempt chain; None when no workload qualifies."""
    for doc in documents.values():
        for query in workloads:
            db = Database.from_xml(doc, columns="on" if columns else None)
            if require_choice is not None:
                try:
                    if db.plan(kind, query).strategy != require_choice:
                        continue
                except ReproError:
                    continue
            with FaultPlan([spec], seed=seed) as plan:
                try:
                    result = db.run(
                        kind, query, strategy, retries=1, on_error="fallback"
                    )
                except ReproError:
                    continue
            if plan.trips and len(result.stats.attempts) >= 2:
                return result.stats
    return None
