"""Observability and resource governance for the query engine.

Zero-dependency tracing (hierarchical :class:`Span` trees with wall
times and counters), a process-wide :data:`METRICS` registry, and
per-call :class:`ResourceBudget` enforcement (deadlines, node-visit
ceilings) with planner fallback — see docs/OBSERVABILITY.md.

The instrumentation contract, in one line::

    ctx = current()          # None unless the call opted into observation
    if ctx is not None:
        ctx.tick(n)          # count visited nodes + enforce the budget
        ctx.count("x.y", n)  # charge a named counter
        with ctx.span("stage"):
            ...              # timed region (no-op without a tracer)
"""

from repro.errors import ResourceBudgetExceeded
from repro.obs.budget import ResourceBudget
from repro.obs.context import Observation, current, current_trace_id, observed
from repro.obs.events import EVENT_SCHEMA, EventLogWriter, TraceBuffer
from repro.obs.export import (
    lint_openmetrics,
    render_openmetrics,
    render_pretty,
    span_from_dict,
    trace_json,
    trace_to_dict,
    write_trace,
)
from repro.obs.metrics import METRICS, DurationHistogram, MetricsRegistry
from repro.obs.sampling import TraceSampler, head_decision, new_trace_id
from repro.obs.tracer import Span, Tracer

__all__ = [
    "EVENT_SCHEMA",
    "EventLogWriter",
    "METRICS",
    "DurationHistogram",
    "MetricsRegistry",
    "Observation",
    "ResourceBudget",
    "ResourceBudgetExceeded",
    "Span",
    "TraceBuffer",
    "TraceSampler",
    "Tracer",
    "current",
    "current_trace_id",
    "head_decision",
    "lint_openmetrics",
    "new_trace_id",
    "observed",
    "render_openmetrics",
    "render_pretty",
    "span_from_dict",
    "trace_json",
    "trace_to_dict",
    "write_trace",
]
