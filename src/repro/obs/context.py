"""The active observation context — the single gate all instrumentation
checks.

Instrumented code throughout the library (structural-join scanners,
twig stacks, the Minoux fixpoint, the streaming engine, the linear
XPath evaluator) begins with::

    ctx = current()

and does *nothing else* when ``ctx`` is None — that one module-global
read is the entire disabled-tracing cost, which is how the engine keeps
the <5% overhead contract (measured by
``benchmarks/bench_engine_reuse.py``).  When a context is active, the
code charges counters, ticks the resource budget, and opens spans
through it.

An :class:`Observation` bundles the optional :class:`~repro.obs.tracer.Tracer`
(spans) with the optional :class:`~repro.obs.budget.ResourceBudget`
(deadlines / visit ceilings) and accumulates flat counter totals either
way.  :func:`observed` activates one for the duration of a call and
restores the previous context afterwards, so nested engine calls (e.g.
a fallback re-execution) stack correctly.

The active context lives in a :class:`contextvars.ContextVar`, so each
thread (and each ``contextvars`` context) sees only its own engine
call's observation — the query service answers concurrent requests on a
thread pool, and one request's budget or span tree must never be
charged by another's evaluation loop.  A ``ContextVar`` read is a C
lookup, so the disabled-instrumentation cost stays a single cheap gate
(pinned by ``benchmarks/bench_engine_reuse.py``).
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from contextvars import ContextVar
from typing import Any, Iterator

from repro.obs.budget import ResourceBudget
from repro.obs.tracer import Span, Tracer

__all__ = ["Observation", "current", "current_trace_id", "observed"]

# one shared, reentrant no-op context manager for span() without a tracer
_NULL_SPAN = nullcontext()

_active: "ContextVar[Observation | None]" = ContextVar("repro_obs_active",
                                                       default=None)


def current() -> "Observation | None":
    """The observation context of the running engine call, if any."""
    return _active.get()


def current_trace_id() -> "str | None":
    """The trace id of the active observation context, if any.

    The service's per-request middleware stamps its trace id on the
    request's Observation; every engine call, attempt record and error
    payload produced under it reads the id back through this one
    function — the whole correlation story is this ContextVar hop.
    """
    ctx = _active.get()
    return ctx.trace_id if ctx is not None else None


class Observation:
    """Tracing + governance state for one engine call (or one service
    request — the middleware wraps each request in its own Observation,
    carrying the request's trace id for everything nested under it)."""

    __slots__ = ("tracer", "budget", "counters", "trace_id", "meta")

    def __init__(
        self,
        tracer: "Tracer | None" = None,
        budget: "ResourceBudget | None" = None,
        trace_id: "str | None" = None,
    ):
        self.tracer = tracer
        self.budget = budget
        #: the request-scoped trace id, if one was issued (service path)
        self.trace_id = trace_id
        #: request-level annotations (store, kind, strategy) the service
        #: folds into the event-log record; None until first annotate()
        self.meta: "dict[str, Any] | None" = None
        #: flat counter totals for the whole call (all attempts)
        self.counters: dict[str, int] = {}

    def annotate(self, **fields: Any) -> None:
        """Attach event-log fields (store, kind, strategy, ...) to this
        context; later values win.  Lazy dict: unannotated contexts
        never pay the allocation."""
        if self.meta is None:
            self.meta = {}
        self.meta.update(fields)

    # -- spans -------------------------------------------------------------

    def span(self, name: str, **meta: Any):
        """A context manager timing a region; no-op without a tracer."""
        if self.tracer is None:
            return _NULL_SPAN
        return self.tracer.span(name, **meta)

    # -- counters and budget ----------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Charge a named counter (flat total + innermost open span)."""
        self.counters[name] = self.counters.get(name, 0) + n
        if self.tracer is not None:
            self.tracer.count(name, n)

    def tick(self, n: int = 1) -> None:
        """Account ``n`` visited nodes and enforce the budget.

        This is the instrumentation workhorse: evaluation loops call it
        (usually batched — per axis application, per stream, per pop)
        so governance checks stay cheap and periodic.  Raises
        :class:`~repro.errors.ResourceBudgetExceeded` on a crossed
        limit.
        """
        self.count("nodes.visited", n)
        if self.budget is not None:
            self.budget.charge(n)


@contextmanager
def observed(obs: Observation) -> Iterator[Observation]:
    """Activate ``obs`` as the current context of this thread/context."""
    token = _active.set(obs)
    try:
        yield obs
    finally:
        _active.reset(token)
