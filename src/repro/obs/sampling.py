"""Trace identity and sampling policies (docs/OBSERVABILITY.md).

Every request through the query service gets a **trace id** — accepted
from the client via the ``X-Repro-Trace`` header or generated here —
that rides the :class:`~repro.obs.context.Observation` ContextVar into
every engine span, supervisor attempt and error payload produced on the
request's behalf.  Whether the request's *span tree* is retained (ring
buffer, event log) is the :class:`TraceSampler`'s call, made from three
composable policies:

- **head sampling** — keep a ``head_rate`` fraction of requests.  The
  decision is a pure function of the trace id (top 8 hex digits against
  a threshold, the TraceIdRatioBased construction), so every process
  observing the same distributed trace id reaches the same verdict and
  a client-supplied id makes the retention decision reproducible.
- **tail sampling** — keep any request slower than ``slow_ms``,
  regardless of the head draw.  Tail retention needs the span tree to
  already exist when the latency is known, so a tail-enabled sampler
  records **all** requests and discards the unlucky ones at the end
  (record-all, retain-sampled).
- **always-on-error** — keep any request that failed, same mechanics
  as tail sampling.

The cost contract mirrors :func:`repro.faults.faultpoint`: the per-call
engine gate is one ContextVar read plus an attribute check, and
:func:`TraceSampler.head_decision` is a string slice and an integer
compare — both pinned under the faultpoint-style near-zero ceiling by
``benchmarks/bench_tracing.py``.

``obs.sample`` is a registered fault-injection site: a fault tripped in
the sampling decision must never fail the request — the service
swallows it and degrades to "not sampled" with a counted drop
(``tests/test_tracing.py``, the chaos telemetry driver).
"""

from __future__ import annotations

import os

from repro.faults import register_site

__all__ = ["TraceSampler", "head_decision", "new_trace_id"]

register_site("obs.sample", "trace retention sampling decision")

#: head_decision keeps ids whose top-32-bit value falls under
#: rate * 2^32; 8 hex digits carry exactly those 32 bits
_HEAD_SPACE = 1 << 32


def new_trace_id() -> str:
    """A fresh 128-bit trace id as 32 lowercase hex digits.

    ``os.urandom`` rather than ``random``: ids must stay unique across
    the service's worker threads and across processes without any
    shared state, and must not perturb seeded RNG streams (the fault
    plans and workload generators own those).
    """
    return os.urandom(16).hex()


def head_decision(trace_id: str, rate: float) -> bool:
    """The deterministic head-sampling verdict for one trace id.

    A pure function of (id, rate): the same id sampled at the same rate
    always lands the same way, in any process.  Malformed ids hash to a
    verdict instead of raising — sampling must never fail a request.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    try:
        draw = int(trace_id[:8], 16)
    except (ValueError, TypeError):
        draw = hash(trace_id) & 0xFFFFFFFF
    return draw < int(rate * _HEAD_SPACE)


class TraceSampler:
    """Composable retention policy: head rate, tail latency, errors.

    ``head_rate`` — fraction of requests whose traces are kept
    unconditionally (1.0 keeps everything, 0.0 nothing).
    ``slow_ms`` — keep any request at least this slow (None disables).
    ``keep_errors`` — keep any failed request.

    :meth:`record` says whether a request should carry a tracer at all
    (cheap to answer up front); :meth:`retain` makes the final keep
    decision once the outcome and latency are known.
    """

    __slots__ = ("head_rate", "slow_ms", "keep_errors")

    def __init__(
        self,
        head_rate: float = 1.0,
        slow_ms: "float | None" = None,
        keep_errors: bool = True,
    ):
        if not 0.0 <= head_rate <= 1.0:
            raise ValueError(f"head_rate must be in [0, 1], got {head_rate}")
        if slow_ms is not None and slow_ms < 0:
            raise ValueError(f"slow_ms must be >= 0, got {slow_ms}")
        self.head_rate = float(head_rate)
        self.slow_ms = slow_ms
        self.keep_errors = bool(keep_errors)

    @property
    def enabled(self) -> bool:
        """Whether any policy can ever retain a trace."""
        return (
            self.head_rate > 0.0
            or self.slow_ms is not None
            or self.keep_errors
        )

    def record(self, trace_id: str) -> bool:
        """Whether this request should record spans at all.

        Tail and error retention only know their verdict *after* the
        request, so either policy forces record-all; with head sampling
        alone the head draw already settles retention and unlucky
        requests skip span recording entirely.
        """
        if self.slow_ms is not None or self.keep_errors:
            return True
        return head_decision(trace_id, self.head_rate)

    def retain(
        self, trace_id: str, duration_s: float, failed: bool
    ) -> "str | None":
        """The final keep decision; returns the winning policy or None.

        Policies compose as a union, checked cheapest-story-first:
        errors, then the tail threshold, then the head draw.
        """
        if failed and self.keep_errors:
            return "error"
        if self.slow_ms is not None and duration_s * 1e3 >= self.slow_ms:
            return "slow"
        if head_decision(trace_id, self.head_rate):
            return "head"
        return None

    def describe(self) -> dict:
        """The policy configuration, for /debug/traces and the docs."""
        return {
            "head_rate": self.head_rate,
            "slow_ms": self.slow_ms,
            "keep_errors": self.keep_errors,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceSampler(head_rate={self.head_rate}, "
            f"slow_ms={self.slow_ms}, keep_errors={self.keep_errors})"
        )
