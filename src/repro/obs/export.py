"""Trace export: JSON documents and a pretty text rendering.

Both operate on the :class:`~repro.obs.tracer.Span` tree carried by
``ExecutionStats.trace``.  The JSON form is what the CLI's
``--trace FILE`` writes (and what CI uploads as a build artifact); the
pretty form is what ``--trace`` without a file prints to stderr.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.tracer import Span

__all__ = ["trace_to_dict", "trace_json", "write_trace", "render_pretty"]


def trace_to_dict(span: Span) -> dict[str, Any]:
    """The JSON-serializable view of a span tree."""
    return span.to_dict()


def trace_json(span: Span, indent: "int | None" = 2) -> str:
    return json.dumps(trace_to_dict(span), indent=indent, sort_keys=False)


def write_trace(span: Span, path: str) -> None:
    """Write one span tree as a JSON document."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(trace_json(span))
        fh.write("\n")


def render_pretty(span: Span) -> str:
    """An indented one-span-per-line rendering with times and counters::

        query:xpath                          1.42 ms
          plan                               0.08 ms
          execute:structural-join            1.02 ms  sj.pairs=4 ...
    """
    lines: list[str] = []

    def visit(s: Span, depth: int) -> None:
        counters = " ".join(
            f"{k}={v}" for k, v in sorted(s.counters.items())
        )
        meta = " ".join(f"{k}={v}" for k, v in s.meta.items())
        label = "  " * depth + s.name
        tail = " ".join(part for part in (meta, counters) if part)
        lines.append(
            f"{label:<44s} {s.duration_ms:>9.3f} ms" + (f"  {tail}" if tail else "")
        )
        for child in s.children:
            visit(child, depth + 1)

    visit(span, 0)
    return "\n".join(lines)
