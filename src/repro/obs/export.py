"""Trace and metrics export: JSON documents, pretty text, OpenMetrics.

The span-tree functions operate on the :class:`~repro.obs.tracer.Span`
tree carried by ``ExecutionStats.trace``.  The JSON form is what the
CLI's ``--trace FILE`` writes (and what CI uploads as a build
artifact); the pretty form is what ``--trace`` without a file prints to
stderr.  :func:`render_openmetrics` exposes a
:class:`~repro.obs.metrics.MetricsRegistry` — counters and duration
histograms — in the OpenMetrics text format, for scraping long-lived
processes (the benchmark-run sibling is
:func:`repro.perf.render_bench_openmetrics`).
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span

__all__ = [
    "trace_to_dict",
    "trace_json",
    "write_trace",
    "render_pretty",
    "render_openmetrics",
]


def trace_to_dict(span: Span) -> dict[str, Any]:
    """The JSON-serializable view of a span tree."""
    return span.to_dict()


def trace_json(span: Span, indent: "int | None" = 2) -> str:
    return json.dumps(trace_to_dict(span), indent=indent, sort_keys=False)


def write_trace(span: Span, path: str) -> None:
    """Write one span tree as a JSON document."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(trace_json(span))
        fh.write("\n")


def render_pretty(span: Span) -> str:
    """An indented one-span-per-line rendering with times and counters::

        query:xpath                          1.42 ms
          plan                               0.08 ms
          execute:structural-join            1.02 ms  sj.pairs=4 ...
    """
    lines: list[str] = []

    def visit(s: Span, depth: int) -> None:
        counters = " ".join(
            f"{k}={v}" for k, v in sorted(s.counters.items())
        )
        meta = " ".join(f"{k}={v}" for k, v in s.meta.items())
        label = "  " * depth + s.name
        tail = " ".join(part for part in (meta, counters) if part)
        lines.append(
            f"{label:<44s} {s.duration_ms:>9.3f} ms" + (f"  {tail}" if tail else "")
        )
        for child in s.children:
            visit(child, depth + 1)

    visit(span, 0)
    return "\n".join(lines)


def _om_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_openmetrics(registry: MetricsRegistry) -> str:
    """The registry in OpenMetrics text format.

    Counters become ``repro_counter_total{name="..."}`` samples;
    duration histograms become a summary family
    ``repro_duration_seconds`` with p50/p90/p99 quantile samples plus
    the ``_count``/``_sum`` pair per name.
    """
    lines: list[str] = []
    lines.append("# TYPE repro_queries_observed counter")
    lines.append(f"repro_queries_observed_total {registry.queries_observed}")
    lines.append("# TYPE repro_counter counter")
    for name, total in registry.snapshot().items():
        lines.append(f'repro_counter_total{{name="{_om_escape(name)}"}} {total}')
    lines.append("# TYPE repro_duration_seconds summary")
    for name, summary in registry.durations().items():
        label = f'name="{_om_escape(name)}"'
        for quantile, key in (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")):
            lines.append(
                f'repro_duration_seconds{{{label},quantile="{quantile}"}} '
                f"{summary[key]:.9g}"
            )
        lines.append(f"repro_duration_seconds_count{{{label}}} {summary['count']}")
        lines.append(f"repro_duration_seconds_sum{{{label}}} {summary['sum']:.9g}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
