"""Trace and metrics export: JSON documents, pretty text, OpenMetrics.

The span-tree functions operate on the :class:`~repro.obs.tracer.Span`
tree carried by ``ExecutionStats.trace``.  The JSON form is what the
CLI's ``--trace FILE`` writes (and what CI uploads as a build
artifact); the pretty form is what ``--trace`` without a file prints to
stderr.  :func:`render_openmetrics` exposes a
:class:`~repro.obs.metrics.MetricsRegistry` — counters and duration
histograms — in the OpenMetrics text format, for scraping long-lived
processes (the benchmark-run sibling is
:func:`repro.perf.render_bench_openmetrics`).
"""

from __future__ import annotations

import json
import math
import re
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span

__all__ = [
    "trace_to_dict",
    "trace_json",
    "span_from_dict",
    "write_trace",
    "render_pretty",
    "render_openmetrics",
    "lint_openmetrics",
]


def trace_to_dict(span: Span) -> dict[str, Any]:
    """The JSON-serializable view of a span tree."""
    return span.to_dict()


def span_from_dict(payload: "dict[str, Any]") -> Span:
    """Rebuild a span tree from its :meth:`Span.to_dict` form.

    The JSON form keeps only durations, not absolute clock readings, so
    the rebuilt tree is anchored at zero (``start_s=0``, ``end_s`` the
    recorded duration) — exactly enough for :func:`render_pretty`
    waterfalls and counter inspection, which is what ``repro trace
    show`` and ``GET /debug/traces/<id>`` need.
    """
    if not isinstance(payload, dict) or "name" not in payload:
        raise ValueError(f"not a span document: {payload!r}")
    span = Span(str(payload["name"]), dict(payload.get("meta") or {}))
    span.start_s = 0.0
    span.end_s = float(payload.get("duration_ms", 0.0)) / 1e3
    span.counters = {
        str(k): int(v) for k, v in (payload.get("counters") or {}).items()
    }
    span.children = [span_from_dict(c) for c in payload.get("children") or []]
    return span


def trace_json(span: Span, indent: "int | None" = 2) -> str:
    return json.dumps(trace_to_dict(span), indent=indent, sort_keys=False)


def write_trace(span: Span, path: str) -> None:
    """Write one span tree as a JSON document."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(trace_json(span))
        fh.write("\n")


def render_pretty(span: Span) -> str:
    """An indented one-span-per-line rendering with times and counters::

        query:xpath                          1.42 ms
          plan                               0.08 ms
          execute:structural-join            1.02 ms  sj.pairs=4 ...
    """
    lines: list[str] = []

    def visit(s: Span, depth: int) -> None:
        counters = " ".join(
            f"{k}={v}" for k, v in sorted(s.counters.items())
        )
        meta = " ".join(f"{k}={v}" for k, v in s.meta.items())
        label = "  " * depth + s.name
        tail = " ".join(part for part in (meta, counters) if part)
        lines.append(
            f"{label:<44s} {s.duration_ms:>9.3f} ms" + (f"  {tail}" if tail else "")
        )
        for child in s.children:
            visit(child, depth + 1)

    visit(span, 0)
    return "\n".join(lines)


def _om_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_openmetrics(registry: MetricsRegistry) -> str:
    """The registry in OpenMetrics text format.

    Counters become ``repro_counter_total{name="..."}`` samples.
    Duration histograms are exposed twice:

    - ``repro_duration_seconds`` — a native **histogram** family with
      cumulative ``_bucket{...,le="..."}`` samples (terminated by the
      mandatory ``le="+Inf"`` bucket) plus ``_count``/``_sum``, so
      external scrapers can aggregate latency distributions across
      processes (bucket counts add; pre-computed quantiles don't).
    - ``repro_duration_quantiles`` — the process-local p50/p90/p99
      estimates as a **summary** family, for humans reading the page.
    """
    lines: list[str] = []
    lines.append("# TYPE repro_queries_observed counter")
    lines.append(f"repro_queries_observed_total {registry.queries_observed}")
    lines.append("# TYPE repro_counter counter")
    for name, total in registry.snapshot().items():
        lines.append(f'repro_counter_total{{name="{_om_escape(name)}"}} {total}')
    summaries = registry.durations()
    lines.append("# TYPE repro_duration_seconds histogram")
    for name, summary in summaries.items():
        label = f'name="{_om_escape(name)}"'
        hist = registry.duration(name)
        buckets = hist.buckets() if hist is not None else []
        for bound, cumulative in buckets:
            le = "+Inf" if math.isinf(bound) else f"{bound:.9g}"
            lines.append(
                f'repro_duration_seconds_bucket{{{label},le="{le}"}} {cumulative}'
            )
        if not buckets or not math.isinf(buckets[-1][0]):
            lines.append(
                f'repro_duration_seconds_bucket{{{label},le="+Inf"}} '
                f"{summary['count']}"
            )
        lines.append(f"repro_duration_seconds_count{{{label}}} {summary['count']}")
        lines.append(f"repro_duration_seconds_sum{{{label}}} {summary['sum']:.9g}")
    lines.append("# TYPE repro_duration_quantiles summary")
    for name, summary in summaries.items():
        label = f'name="{_om_escape(name)}"'
        for quantile, key in (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")):
            lines.append(
                f'repro_duration_quantiles{{{label},quantile="{quantile}"}} '
                f"{summary[key]:.9g}"
            )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# one sample line: name, optional {labels}, a float value (no timestamp
# — the exposition never emits one), nothing trailing
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\["\\n])*)"'
)


def _parse_labels(raw: str) -> "dict[str, str] | None":
    """Label pairs from the text between braces; None when malformed
    (unescaped quote, bad key, stray characters)."""
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(raw):
        match = _LABEL_RE.match(raw, pos)
        if match is None:
            return None
        labels[match.group("key")] = match.group("value")
        pos = match.end()
        if pos < len(raw):
            if raw[pos] != ",":
                return None
            pos += 1
    return labels


def lint_openmetrics(text: str) -> "list[str]":
    """Problems found in an OpenMetrics exposition; empty means clean.

    The checks a scraper would trip on first: a missing (or
    non-terminal) ``# EOF``, malformed sample lines, broken label
    escaping, unparseable values, histogram bucket counts that are not
    monotone in ``le`` order, and a final ``+Inf`` bucket disagreeing
    with the series ``_count``.  This is what the CI scrape-lint step
    (and ``tests/test_tracing.py``) runs against ``GET /metrics``.
    """
    problems: list[str] = []
    if not text.endswith("# EOF\n"):
        problems.append("exposition does not end with '# EOF\\n'")
    lines = text.splitlines()
    if "# EOF" in lines[:-1]:
        problems.append("'# EOF' appears before the final line")
    # (series name, frozenset of non-le labels) -> [(le, count), ...]
    buckets: dict[tuple, list[tuple[float, int]]] = {}
    counts: dict[tuple, float] = {}
    for n, line in enumerate(lines, 1):
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {n}: malformed sample {line!r}")
            continue
        labels_raw = match.group("labels")
        labels = _parse_labels(labels_raw) if labels_raw is not None else {}
        if labels is None:
            problems.append(f"line {n}: malformed labels {labels_raw!r}")
            continue
        try:
            value = float(match.group("value"))
        except ValueError:
            problems.append(
                f"line {n}: unparseable value {match.group('value')!r}"
            )
            continue
        name = match.group("name")
        series = frozenset(
            (k, v) for k, v in labels.items() if k != "le"
        )
        if name.endswith("_bucket") and "le" in labels:
            le_raw = labels["le"]
            le = math.inf if le_raw == "+Inf" else None
            if le is None:
                try:
                    le = float(le_raw)
                except ValueError:
                    problems.append(f"line {n}: unparseable le {le_raw!r}")
                    continue
            buckets.setdefault((name[: -len("_bucket")], series), []).append(
                (le, int(value))
            )
        elif name.endswith("_count"):
            counts[(name[: -len("_count")], series)] = value
    for (family, series), pairs in buckets.items():
        label_text = ",".join(f"{k}={v}" for k, v in sorted(series))
        in_order = sorted(pairs)  # judge monotonicity in le order
        cumulative = [c for _, c in in_order]
        if any(prev > nxt for prev, nxt in zip(cumulative, cumulative[1:])):
            problems.append(
                f"{family}{{{label_text}}}: bucket counts not monotone: "
                f"{cumulative}"
            )
        if not in_order or not math.isinf(in_order[-1][0]):
            problems.append(f"{family}{{{label_text}}}: no le=\"+Inf\" bucket")
        else:
            total = counts.get((family, series))
            if total is not None and in_order[-1][1] != total:
                problems.append(
                    f"{family}{{{label_text}}}: +Inf bucket "
                    f"{in_order[-1][1]} != _count {total:g}"
                )
    return problems
