"""Resource governance: deadlines and visit budgets for one engine call.

A :class:`ResourceBudget` is charged by the instrumented evaluation
loops through :meth:`~repro.obs.context.Observation.tick`.  Charges are
cheap (an integer add and compare); the wall-clock deadline is read on
every charge, but charges arrive batched — per axis application, per
join stream, per automaton pass, per fixpoint pop — so the clock is
consulted a bounded number of times per unit of real work.

Budgets are *per attempt*: when the planner falls back to another
strategy after :class:`~repro.errors.ResourceBudgetExceeded`, the next
attempt gets a fresh budget (a cheaper route deserves its own window;
see docs/OBSERVABILITY.md for the semantics).
"""

from __future__ import annotations

import time

from repro.errors import ResourceBudgetExceeded

__all__ = ["ResourceBudget"]


class ResourceBudget:
    """Deadline and/or node-visit ceiling for one evaluation attempt."""

    __slots__ = ("deadline_s", "max_visited", "visited", "_deadline_at", "_clock")

    def __init__(
        self,
        deadline_s: "float | None" = None,
        max_visited: "int | None" = None,
        clock=time.monotonic,
    ):
        if deadline_s is not None and deadline_s < 0:
            raise ValueError("deadline_s must be non-negative")
        if max_visited is not None and max_visited < 0:
            raise ValueError("max_visited must be non-negative")
        self.deadline_s = deadline_s
        self.max_visited = max_visited
        self.visited = 0
        self._clock = clock
        self._deadline_at = None if deadline_s is None else clock() + deadline_s

    def charge(self, n: int = 1) -> None:
        """Account ``n`` units of work; raise if a limit is crossed."""
        self.visited += n
        if self.max_visited is not None and self.visited > self.max_visited:
            raise ResourceBudgetExceeded(
                "max_visited", limit=self.max_visited, spent=self.visited
            )
        if self._deadline_at is not None and self._clock() >= self._deadline_at:
            raise ResourceBudgetExceeded(
                "deadline", limit=self.deadline_s, spent=self.visited
            )

    def remaining_visits(self) -> "int | None":
        if self.max_visited is None:
            return None
        return max(self.max_visited - self.visited, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResourceBudget(deadline_s={self.deadline_s}, "
            f"max_visited={self.max_visited}, visited={self.visited})"
        )
