"""Resource governance: deadlines and visit budgets for one engine call.

A :class:`ResourceBudget` is charged by the instrumented evaluation
loops through :meth:`~repro.obs.context.Observation.tick`.  Charges are
cheap (an integer add and compare); the wall-clock deadline is read on
every charge, but charges arrive batched — per axis application, per
join stream, per automaton pass, per fixpoint pop — so the clock is
consulted a bounded number of times per unit of real work.

Budgets are *per attempt*: when the planner falls back to another
strategy after :class:`~repro.errors.ResourceBudgetExceeded`, the next
attempt gets a fresh budget (a cheaper route deserves its own window;
see docs/OBSERVABILITY.md for the semantics).
"""

from __future__ import annotations

import math
import time

from repro.errors import ResourceBudgetExceeded

__all__ = ["ResourceBudget"]


class ResourceBudget:
    """Deadline and/or node-visit ceiling for one evaluation attempt."""

    __slots__ = (
        "deadline_s",
        "max_visited",
        "visited",
        "_deadline_at",
        "_started_at",
        "_clock",
    )

    def __init__(
        self,
        deadline_s: "float | None" = None,
        max_visited: "int | None" = None,
        clock=time.monotonic,
    ):
        if deadline_s is not None and deadline_s < 0:
            raise ValueError("deadline_s must be non-negative")
        if max_visited is not None and max_visited < 0:
            raise ValueError("max_visited must be non-negative")
        self.deadline_s = deadline_s
        self.max_visited = max_visited
        self.visited = 0
        self._clock = clock
        if deadline_s is None:
            self._started_at = self._deadline_at = None
        else:
            self._started_at = clock()
            # a zero deadline is exhausted before any work: the first
            # charge must fail deterministically, not depend on clock
            # resolution having advanced past start + 0
            self._deadline_at = (
                -math.inf if deadline_s == 0 else self._started_at + deadline_s
            )

    def charge(self, n: int = 1) -> None:
        """Account ``n`` units of work; raise if a limit is crossed.

        Charges arrive batched, so a crossing charge may overshoot the
        ceiling; ``spent`` always reports the pre-batch total plus the
        whole batch (the amount actually consumed), and a deadline
        crossing reports elapsed *seconds* — the same unit as its limit.
        """
        spent = self.visited + n
        self.visited = spent
        if self.max_visited is not None and spent > self.max_visited:
            raise ResourceBudgetExceeded(
                "max_visited", limit=self.max_visited, spent=spent
            )
        if self._deadline_at is not None:
            now = self._clock()
            if now >= self._deadline_at:
                raise ResourceBudgetExceeded(
                    "deadline",
                    limit=self.deadline_s,
                    spent=max(now - self._started_at, 0.0),
                )

    def remaining_visits(self) -> "int | None":
        if self.max_visited is None:
            return None
        return max(self.max_visited - self.visited, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResourceBudget(deadline_s={self.deadline_s}, "
            f"max_visited={self.max_visited}, visited={self.visited})"
        )
