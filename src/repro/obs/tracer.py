"""Hierarchical spans: the trace side of :mod:`repro.obs`.

A :class:`Span` is one timed region of an engine call — "plan",
"execute:structural-join", "sj-step" — with a name, optional metadata,
wall-clock start/end, its own counter increments, and child spans.  A
:class:`Tracer` maintains the open-span stack for one traced call and
hands back the finished root.

Spans are only ever allocated when tracing was explicitly requested
(``Database.query(..., trace=True)`` / the CLI's ``--trace``); the
disabled path never touches this module beyond the import.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = ["Span", "Tracer"]


class Span:
    """One named, timed region with counters and child spans."""

    __slots__ = ("name", "meta", "start_s", "end_s", "counters", "children")

    def __init__(self, name: str, meta: "dict[str, Any] | None" = None):
        self.name = name
        self.meta = meta or {}
        self.start_s = 0.0
        self.end_s = 0.0
        self.counters: dict[str, int] = {}
        self.children: list[Span] = []

    @property
    def duration_s(self) -> float:
        return max(self.end_s - self.start_s, 0.0)

    @property
    def duration_ms(self) -> float:
        return self.duration_s * 1e3

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def iter_spans(self) -> Iterator["Span"]:
        """This span and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> "Span | None":
        """First span (pre-order) with the given name, or None."""
        for span in self.iter_spans():
            if span.name == name:
                return span
        return None

    def total_counters(self) -> dict[str, int]:
        """Counter totals aggregated over this span's whole subtree."""
        totals: dict[str, int] = {}
        for span in self.iter_spans():
            for key, value in span.counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable view of the subtree (see repro.obs.export)."""
        out: dict[str, Any] = {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 4),
        }
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration_ms:.2f} ms, "
            f"{len(self.children)} children)"
        )


class Tracer:
    """The open-span stack of one traced engine call.

    Not thread-safe: a Tracer belongs to exactly one call on one thread
    (the engine activates it through :func:`repro.obs.context.observed`).
    """

    __slots__ = ("root", "_stack", "_clock")

    def __init__(self, clock=time.perf_counter):
        self.root: "Span | None" = None
        self._stack: list[Span] = []
        self._clock = clock

    @property
    def current(self) -> "Span | None":
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def start(self, name: str, **meta: Any) -> Span:
        span = Span(name, meta or None)
        span.start_s = self._clock()
        if self._stack:
            self._stack[-1].children.append(span)
        elif self.root is None:
            self.root = span
        else:
            # a second top-level region: reparent under the existing root
            # so one call always yields one tree
            self.root.children.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span) -> None:
        span.end_s = self._clock()
        # unwind to (and including) the given span; tolerates spans left
        # open by an exception between start and end
        while self._stack:
            top = self._stack.pop()
            if top.end_s == 0.0:
                top.end_s = span.end_s
            if top is span:
                break

    @contextmanager
    def span(self, name: str, **meta: Any) -> Iterator[Span]:
        span = self.start(name, **meta)
        try:
            yield span
        finally:
            self.end(span)

    def count(self, name: str, n: int = 1) -> None:
        """Attribute a counter increment to the innermost open span."""
        if self._stack:
            self._stack[-1].count(name, n)
        elif self.root is not None:
            self.root.count(name, n)
