"""The process-wide metrics registry.

Every observed engine call (one with tracing or a resource budget
active) flushes its counter totals here when it finishes, so long-lived
processes — servers, benchmark sweeps, the CLI — can read cumulative
counts across queries without keeping every ``ExecutionStats`` around.

Unobserved calls are *not* counted: the registry aggregates exactly the
work the observation layer saw, keeping the disabled path free of even
dictionary updates.  Benchmarks that want counters opt in by running
their workload with ``trace=True`` (see
``benchmarks/bench_engine_reuse.py``).
"""

from __future__ import annotations

from typing import Mapping

__all__ = ["MetricsRegistry", "METRICS"]


class MetricsRegistry:
    """A named-counter accumulator with snapshot/reset semantics."""

    def __init__(self):
        self._counters: dict[str, int] = {}
        self._queries = 0

    def add(self, name: str, n: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + n

    def merge(self, counters: Mapping[str, int]) -> None:
        """Fold one call's counter totals into the registry."""
        for name, value in counters.items():
            self._counters[name] = self._counters.get(name, 0) + value
        self._queries += 1

    def get(self, name: str) -> int:
        return self._counters.get(name, 0)

    @property
    def queries_observed(self) -> int:
        """How many observed calls have been merged since the last reset."""
        return self._queries

    def snapshot(self) -> dict[str, int]:
        """A copy of all counter totals (sorted by name for stable output)."""
        return dict(sorted(self._counters.items()))

    def reset(self) -> None:
        self._counters.clear()
        self._queries = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{self._queries} observed calls)"
        )


#: the process-wide registry observed engine calls merge into
METRICS = MetricsRegistry()
