"""The process-wide metrics registry.

Every observed engine call (one with tracing or a resource budget
active) flushes its counter totals here when it finishes, so long-lived
processes — servers, benchmark sweeps, the CLI — can read cumulative
counts across queries without keeping every ``ExecutionStats`` around.
Since the telemetry PR the registry also keeps **duration histograms**:
each observed call's elapsed time is folded in under ``query.<kind>``
and ``strategy.<name>``, and (when a tracer ran) every span's duration
under ``span.<name>`` — so cumulative per-strategy latency and its
percentiles are queryable, not just event counts.

Unobserved calls are *not* counted: the registry aggregates exactly the
work the observation layer saw, keeping the disabled path free of even
dictionary updates.  Benchmarks that want counters opt in by running
their workload with ``trace=True`` (see
``benchmarks/bench_engine_reuse.py``).  For the text exposition format
see :func:`repro.obs.export.render_openmetrics`.
"""

from __future__ import annotations

import math
import os
import threading
from typing import Mapping

__all__ = ["DurationHistogram", "MetricsRegistry", "METRICS"]


def _bucket_bounds() -> "tuple[float, ...]":
    # geometric ladder 1µs .. ~537s, factor 2: 30 buckets covers every
    # duration this library can plausibly produce
    return tuple(1e-6 * (2.0 ** i) for i in range(30))


_BOUNDS = _bucket_bounds()


class DurationHistogram:
    """Fixed-bucket (log-spaced) histogram of durations in seconds.

    Buckets are cheap and mergeable; percentiles are estimated by
    geometric interpolation inside the winning bucket, which is plenty
    for the "did p99 move an order of magnitude" questions telemetry
    answers.
    """

    __slots__ = ("count", "sum", "min", "max", "_buckets")

    def __init__(self):
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = 0.0
        self._buckets = [0] * (len(_BOUNDS) + 1)

    def observe(self, seconds: float) -> None:
        seconds = max(float(seconds), 0.0)
        self.count += 1
        self.sum += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        lo, hi = 0, len(_BOUNDS)
        while lo < hi:  # first bound >= seconds
            mid = (lo + hi) // 2
            if _BOUNDS[mid] < seconds:
                lo = mid + 1
            else:
                hi = mid
        self._buckets[lo] += 1

    def merge(self, other: "DurationHistogram") -> None:
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for i, n in enumerate(other._buckets):
            self._buckets[i] += n

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated q-quantile (q in [0, 1]) from the buckets."""
        if self.count == 0:
            return 0.0
        rank = max(q, 0.0) * self.count
        seen = 0
        for i, n in enumerate(self._buckets):
            if n == 0:
                continue
            if seen + n >= rank:
                upper = _BOUNDS[i] if i < len(_BOUNDS) else self.max
                lower = _BOUNDS[i - 1] if i > 0 else upper / 2.0
                lower = max(lower, self.min)
                upper = min(max(upper, lower), self.max) or upper
                if upper <= 0 or lower <= 0:
                    return upper
                frac = (rank - seen) / n
                return lower * (upper / lower) ** min(max(frac, 0.0), 1.0)
            seen += n
        return self.max

    def buckets(self) -> "list[tuple[float, int]]":
        """Cumulative (upper_bound, count) pairs for non-empty prefixes."""
        out: list[tuple[float, int]] = []
        cumulative = 0
        for i, n in enumerate(self._buckets):
            cumulative += n
            if n:
                bound = _BOUNDS[i] if i < len(_BOUNDS) else math.inf
                out.append((bound, cumulative))
        return out

    def to_dict(self) -> dict:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": round(self.sum, 9),
            "min": round(self.min, 9),
            "max": round(self.max, 9),
            "p50": round(self.percentile(0.50), 9),
            "p90": round(self.percentile(0.90), 9),
            "p99": round(self.percentile(0.99), 9),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DurationHistogram(count={self.count}, sum={self.sum:.6f}s, "
            f"p50={self.percentile(0.5):.6f}s)"
        )


class MetricsRegistry:
    """A named-counter + duration-histogram accumulator with
    snapshot/reset semantics.

    The registry is process-wide and the query service merges into it
    from every worker thread, so all mutation happens under one lock —
    the counter read-modify-write and the histogram bucket increments
    would silently lose updates otherwise.  Engine calls touch the
    registry once per *call* (at flush), never per node, so the lock is
    far off the evaluation hot path.
    """

    def __init__(self):
        self._counters: dict[str, int] = {}
        self._durations: dict[str, DurationHistogram] = {}
        self._queries = 0
        self._lock = threading.Lock()

    def add(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def merge(self, counters: Mapping[str, int]) -> None:
        """Fold one call's counter totals into the registry."""
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            self._queries += 1

    def get(self, name: str) -> int:
        return self._counters.get(name, 0)

    # -- durations ---------------------------------------------------------

    def observe_duration(self, name: str, seconds: float) -> None:
        """Fold one measured duration into the named histogram."""
        with self._lock:
            hist = self._durations.get(name)
            if hist is None:
                hist = self._durations[name] = DurationHistogram()
            hist.observe(seconds)

    def duration(self, name: str) -> "DurationHistogram | None":
        return self._durations.get(name)

    def total_seconds(self, name: str) -> float:
        """Cumulative wall time recorded under ``name`` (0.0 if unseen)."""
        hist = self._durations.get(name)
        return hist.sum if hist is not None else 0.0

    def durations(self) -> dict[str, dict]:
        """Summaries of all histograms (sorted by name for stable output)."""
        with self._lock:
            return {
                name: hist.to_dict()
                for name, hist in sorted(self._durations.items())
            }

    @property
    def queries_observed(self) -> int:
        """How many observed calls have been merged since the last reset."""
        return self._queries

    def snapshot(self) -> dict[str, int]:
        """A copy of all counter totals (sorted by name for stable output)."""
        with self._lock:
            return dict(sorted(self._counters.items()))

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._durations.clear()
            self._queries = 0

    def _after_fork(self) -> None:
        """Re-initialize in a forked child.

        The parent may have been holding ``_lock`` mid-``merge`` at the
        instant of the fork, in which case the child inherits a lock
        that can never be released — any later ``add`` would deadlock.
        A fresh lock fixes that, and clearing the totals keeps a corpus
        worker's scorecard from double-counting work the parent already
        recorded (children report back explicitly, they don't share the
        registry).
        """
        self._lock = threading.Lock()
        self._counters = {}
        self._durations = {}
        self._queries = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._durations)} histograms, "
            f"{self._queries} observed calls)"
        )


#: the process-wide registry observed engine calls merge into
METRICS = MetricsRegistry()

if hasattr(os, "register_at_fork"):  # POSIX only; harmless no-op elsewhere
    os.register_at_fork(after_in_child=METRICS._after_fork)
