"""The structured event log and the recent-trace ring buffer.

One record per request — trace id, route, store, strategy, attempt
count, outcome, duration, and (when the sampler retained it) the whole
span tree — appended as one JSON line to a size-rotated file.  The
schema is ``repro.obs.event/1``; ``repro trace top``/``list``/``show``
read these files back, and the ``service-smoke`` CI job uploads them as
a build artifact.

Two invariants shape the implementation:

- **The request path never blocks on telemetry.**
  :meth:`EventLogWriter.submit` puts the record on a bounded queue and
  returns; a dedicated background thread drains it.  When the queue is
  full (a stalled disk, a flood of requests) the record is **dropped
  and counted** (``eventlog.dropped`` in :data:`repro.obs.metrics.METRICS`)
  — backpressure turns into visible data loss, never into latency.
- **Telemetry failure never fails a request.**  The write itself is the
  ``obs.eventlog`` fault-injection site; any exception there (injected
  or real — a full disk, a permission flip) is swallowed into the same
  drop counter.  The chaos sweep's telemetry driver proves faulted
  telemetry leaves answers byte-identical.

:class:`TraceBuffer` is the in-memory sibling: a fixed-capacity ring of
the most recent retained traces behind ``GET /debug/traces`` — the
"what just happened" view that needs no file at all.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import weakref
from typing import Any

from repro.faults import faultpoint, register_site
from repro.obs.metrics import METRICS

__all__ = ["EVENT_SCHEMA", "EventLogWriter", "TraceBuffer"]

EVENT_SCHEMA = "repro.obs.event/1"

register_site("obs.eventlog", "background event-log write")

#: sentinel the writer thread interprets as "flush and exit"
_STOP = object()

#: every live writer, so the at-fork hook can re-initialize them all in
#: the child (weak refs: registration must not keep closed writers alive)
_WRITERS: "weakref.WeakSet[EventLogWriter]" = weakref.WeakSet()


def _after_fork_in_child() -> None:
    for writer in list(_WRITERS):
        writer._after_fork()


class EventLogWriter:
    """Bounded, non-blocking JSONL appender with size rotation.

    ::

        writer = EventLogWriter("events.jsonl", max_bytes=1 << 20)
        writer.submit({"trace_id": ..., "route": ..., ...})   # never blocks
        ...
        writer.close()

    ``queue_size`` bounds the in-flight backlog; a full queue drops the
    new record (count in :meth:`stats` and ``METRICS``).  When the file
    would exceed ``max_bytes`` it is rotated to ``<path>.1`` (one
    backup generation, the previous ``.1`` is replaced), so the pair
    never holds more than ~2× ``max_bytes``.
    """

    def __init__(
        self,
        path: str,
        max_bytes: int = 16 * 1024 * 1024,
        queue_size: int = 1024,
    ):
        if max_bytes < 1024:
            raise ValueError(f"max_bytes must be >= 1024, got {max_bytes}")
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        self.path = path
        self.max_bytes = int(max_bytes)
        self.queue_size = int(queue_size)
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=queue_size)
        self._lock = threading.Lock()  # guards the counters below
        self._submitted = 0
        self._written = 0
        self._dropped = 0
        self._rotations = 0
        self._closed = False
        self._fh = None
        self._size = 0
        self._start_worker()
        _WRITERS.add(self)

    def _start_worker(self) -> None:
        self._worker = threading.Thread(
            target=self._drain, name="repro-eventlog", daemon=True
        )
        self._worker.start()

    def _after_fork(self) -> None:
        """Re-initialize in a forked child.

        ``fork()`` copies this object's memory but not the parent's
        background thread, so without intervention the child holds a
        queue nothing drains (submits silently pile up then drop), a
        possibly-held lock, and a duplicated file descriptor whose
        writes would interleave with the parent's.  Reset all of it —
        fresh lock, fresh empty queue, no file handle, zero counters —
        and start a new drain thread so the child logs to ``self.path``
        independently (appends are whole lines, so parent and child
        interleave at line granularity at worst).
        """
        self._lock = threading.Lock()
        self._queue = queue.Queue(maxsize=self.queue_size)
        self._fh = None
        self._size = 0
        self._submitted = 0
        self._written = 0
        self._dropped = 0
        self._rotations = 0
        if not self._closed:
            self._start_worker()

    # -- the request-path side (never blocks) ------------------------------

    def submit(self, record: "dict[str, Any]") -> bool:
        """Enqueue one record; True if accepted, False if dropped.

        Safe from any thread.  Never blocks, never raises: a full
        queue or a closed writer turns into a counted drop.
        """
        with self._lock:
            self._submitted += 1
            if self._closed:
                self._dropped += 1
                METRICS.add("eventlog.dropped")
                return False
        try:
            self._queue.put_nowait(record)
            return True
        except queue.Full:
            with self._lock:
                self._dropped += 1
            METRICS.add("eventlog.dropped")
            return False

    def stats(self) -> "dict[str, int]":
        with self._lock:
            return {
                "submitted": self._submitted,
                "written": self._written,
                "dropped": self._dropped,
                "rotations": self._rotations,
                "queued": self._queue.qsize(),
            }

    # -- the background side -----------------------------------------------

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                self._close_file()
                return
            self._write_one(item)

    def _write_one(self, record: "dict[str, Any]") -> None:
        try:
            # the telemetry fault boundary: an injected error/transient
            # here (or a real disk failure below) must degrade to a
            # counted drop, never escape this thread or touch a request
            faultpoint("obs.eventlog", record)
            line = json.dumps(record, sort_keys=True, separators=(",", ":"))
            encoded = line.encode("utf-8") + b"\n"
            if self._fh is None:
                self._open_file()
            if self._size + len(encoded) > self.max_bytes and self._size > 0:
                self._rotate()
            self._fh.write(encoded)
            self._fh.flush()
            self._size += len(encoded)
            with self._lock:
                self._written += 1
        except Exception:
            with self._lock:
                self._dropped += 1
            METRICS.add("eventlog.dropped")
            try:  # a failed write may leave a wedged handle: reopen lazily
                self._close_file()
            except Exception:
                pass

    def _open_file(self) -> None:
        self._fh = open(self.path, "ab")
        self._size = self._fh.tell()

    def _close_file(self) -> None:
        fh, self._fh = self._fh, None
        if fh is not None:
            fh.close()

    def _rotate(self) -> None:
        self._close_file()
        os.replace(self.path, self.path + ".1")
        with self._lock:
            self._rotations += 1
        self._open_file()

    # -- lifecycle -----------------------------------------------------------

    def flush(self, timeout: float = 5.0) -> bool:
        """Best-effort wait for the backlog to hit disk (tests only).

        Waits for full accounting — every submitted record written or
        dropped — not just an empty queue, since ``qsize() == 0`` can be
        observed while the last record is still mid-write."""
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                done = (
                    self._written + self._dropped >= self._submitted
                    and self._queue.qsize() == 0
                )
            if done:
                return True
            time.sleep(0.01)
        return False

    def close(self, timeout: float = 5.0) -> None:
        """Stop accepting records, flush the backlog, join the thread."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(_STOP)  # unbounded block is fine: capacity >= 1 slot
        self._worker.join(timeout=timeout)

    def __enter__(self) -> "EventLogWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


if hasattr(os, "register_at_fork"):  # POSIX only; harmless no-op elsewhere
    os.register_at_fork(after_in_child=_after_fork_in_child)


class TraceBuffer:
    """A fixed-capacity ring of the most recent retained trace records.

    Records are the same dicts the event log writes (``EVENT_SCHEMA``).
    Lookup is by trace id; listing returns newest-first summaries.  All
    operations are lock-guarded — the service appends from worker
    threads while ``/debug/traces`` reads from others.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._records: "list[dict[str, Any]]" = []
        self._lock = threading.Lock()

    def add(self, record: "dict[str, Any]") -> None:
        with self._lock:
            self._records.append(record)
            if len(self._records) > self.capacity:
                del self._records[: len(self._records) - self.capacity]

    def get(self, trace_id: str) -> "dict[str, Any] | None":
        with self._lock:
            for record in reversed(self._records):
                if record.get("trace_id") == trace_id:
                    return dict(record)
        return None

    def list(self, limit: int = 50) -> "list[dict[str, Any]]":
        """Newest-first summaries (no span trees — those stay behind
        the per-id lookup, so the listing is small)."""
        with self._lock:
            recent = self._records[-max(limit, 0):][::-1]
        return [
            {k: v for k, v in record.items() if k != "spans"}
            for record in recent
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
