"""Deterministic fault injection for the whole library.

The paper's core observation (Section 7 / Figure 7) is that *several*
algorithms answer the same query class at different costs.  The engine
already exploits that redundancy for performance (planner fallback);
this module makes it exploitable for **fault tolerance testing**: every
failure-prone boundary in the library — index construction, each
strategy executor, XML parsing, event streams, disk reads, structural
joins — carries a named *injection site*, and a seeded
:class:`FaultPlan` can deterministically trip any of them.

The contract, in three lines::

    from repro.faults import faultpoint

    faultpoint("index.build")                 # site with no payload
    text = faultpoint("xml.parse", text, mutator=truncate)

With no plan armed, :func:`faultpoint` is one module-global read and a
``None`` check — the same near-zero-cost gate the observability layer
uses (``benchmarks/bench_engine_reuse.py`` pins the overhead).  With a
plan active (context-manager scoped), a matching rule can:

- ``error`` —  raise a typed :class:`~repro.errors.InjectedFault`,
- ``transient`` — raise a :class:`~repro.errors.TransientError`
  (retryable by the engine supervisor),
- ``latency`` — sleep a configured amount and continue,
- ``corrupt`` — pass the payload through the *site-supplied* mutator
  (truncate a document, cut an event stream, chop a byte buffer).

Rules trigger deterministically: by nth matching call, every k-th call,
or with probability ``p`` drawn from the plan's explicitly seeded RNG —
the same plan and seed always trip the same calls.  Every trip is
recorded into the :data:`repro.obs.metrics.METRICS` registry
(``fault.trips`` / ``fault.<site>``) and, when an observation context
is active, into the per-call counters (``faults.injected``), so trips
show up in ``ExecutionStats``.

Spec grammar (used by ``--fault`` on the CLI and by
:meth:`FaultRule.parse`; see docs/ROBUSTNESS.md)::

    SPEC    := SITE ":" KIND [":" ARG] ["@" TRIGGER]
    KIND    := "error" | "transient" | "latency" | "corrupt"
    ARG     := seconds of latency (float; "latency" only)
    TRIGGER := "nth=" N | "every=" K | "p=" FLOAT      (default nth=1)

``SITE`` may be a glob pattern (``strategy.*`` matches every strategy
site).  Examples: ``strategy.linear:error``,
``index.build:transient@nth=1``, ``xml.parse:corrupt``,
``join.merge:latency:0.002@every=3``.
"""

from __future__ import annotations

import fnmatch
import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.errors import InjectedFault, QueryError, TransientError

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultRule",
    "FaultTrip",
    "active_plan",
    "faultpoint",
    "register_site",
    "registered_sites",
]

FAULT_KINDS = ("error", "transient", "latency", "corrupt")

# ---------------------------------------------------------------------------
# the site registry
# ---------------------------------------------------------------------------

#: site name -> one-line description; populated at import time by every
#: instrumented module, so ``registered_sites()`` is the authoritative
#: list the chaos harness sweeps (docs/ROBUSTNESS.md has the table).
_SITES: dict[str, str] = {}


def register_site(name: str, doc: str = "") -> str:
    """Register (idempotently) a named injection site; returns ``name``."""
    _SITES.setdefault(name, doc)
    return name


def registered_sites() -> dict[str, str]:
    """All registered injection sites, name -> description."""
    return dict(sorted(_SITES.items()))


# ---------------------------------------------------------------------------
# the hook
# ---------------------------------------------------------------------------

_PLAN: "FaultPlan | None" = None


def active_plan() -> "FaultPlan | None":
    """The armed :class:`FaultPlan`, if any."""
    return _PLAN


def _after_fork_in_child() -> None:
    # A forked corpus worker inherits the armed plan *snapshot* — rules,
    # seed, and per-site counts as of the fork — which is exactly what
    # deterministic chaos wants: every fresh worker replays the same
    # trip schedule.  But the inherited lock may have been held by a
    # parent thread at the fork instant, so give the child a fresh one.
    plan = _PLAN
    if plan is not None:
        plan._lock = threading.Lock()


if hasattr(os, "register_at_fork"):  # POSIX only; harmless no-op elsewhere
    os.register_at_fork(after_in_child=_after_fork_in_child)


def faultpoint(
    site: str,
    payload: Any = None,
    mutator: "Callable[[Any, random.Random], Any] | None" = None,
) -> Any:
    """The injection hook instrumented code calls at a named site.

    Returns ``payload`` unchanged unless an armed plan's rule trips —
    then it raises, sleeps, or returns the mutated payload.  With no
    plan armed this is a global read and a None check.
    """
    plan = _PLAN
    if plan is None:
        return payload
    return plan._hit(site, payload, mutator)


# ---------------------------------------------------------------------------
# rules, trips and plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultRule:
    """One deterministic injection rule of a :class:`FaultPlan`."""

    site: str  # exact site name or glob pattern ("strategy.*")
    kind: str  # "error" | "transient" | "latency" | "corrupt"
    nth: "int | None" = None  # trip exactly the nth matching call (1-based)
    every: "int | None" = None  # trip every k-th matching call
    p: "float | None" = None  # trip with this probability per call
    latency_s: float = 0.001  # sleep duration for kind="latency"

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise QueryError(
                f"unknown fault kind {self.kind!r}; options: "
                + ", ".join(FAULT_KINDS)
            )
        if self.nth is not None and self.nth < 1:
            raise QueryError("fault trigger nth must be >= 1")
        if self.every is not None and self.every < 1:
            raise QueryError("fault trigger every must be >= 1")
        if self.p is not None and not (0.0 <= self.p <= 1.0):
            raise QueryError("fault trigger p must be in [0, 1]")
        if self.nth is None and self.every is None and self.p is None:
            # default trigger: the first matching call
            object.__setattr__(self, "nth", 1)

    @classmethod
    def parse(cls, spec: str) -> "FaultRule":
        """Parse the ``SITE:KIND[:ARG][@TRIGGER]`` grammar (module doc)."""
        body, _, trigger = spec.partition("@")
        parts = body.split(":")
        if len(parts) < 2 or not parts[0]:
            raise QueryError(
                f"bad fault spec {spec!r}: expected SITE:KIND[:ARG][@TRIGGER]"
            )
        site, kind = parts[0].strip(), parts[1].strip()
        kwargs: dict[str, Any] = {}
        if len(parts) > 2:
            if kind != "latency":
                raise QueryError(
                    f"bad fault spec {spec!r}: only 'latency' takes an argument"
                )
            try:
                kwargs["latency_s"] = float(parts[2])
            except ValueError:
                raise QueryError(
                    f"bad fault spec {spec!r}: latency argument must be a float"
                ) from None
        if trigger:
            key, eq, value = trigger.partition("=")
            key = key.strip()
            if not eq or key not in ("nth", "every", "p"):
                raise QueryError(
                    f"bad fault trigger {trigger!r}: expected nth=N, "
                    "every=K or p=F"
                )
            try:
                kwargs[key] = float(value) if key == "p" else int(value)
            except ValueError:
                raise QueryError(
                    f"bad fault trigger {trigger!r}: malformed number"
                ) from None
        return cls(site, kind, **kwargs)

    def matches(self, site: str) -> bool:
        return self.site == site or fnmatch.fnmatchcase(site, self.site)

    def triggers(self, call_index: int, rng: random.Random) -> bool:
        """Whether this rule trips the ``call_index``-th matching call.

        The probability draw consumes the plan RNG only for ``p`` rules,
        so deterministic (nth/every) rules never perturb the stream.
        """
        if self.nth is not None:
            return call_index == self.nth
        if self.every is not None:
            return call_index % self.every == 0
        return rng.random() < self.p  # type: ignore[operator]

    def spec(self) -> str:
        """The canonical spec string this rule round-trips to."""
        body = f"{self.site}:{self.kind}"
        if self.kind == "latency":
            body += f":{self.latency_s}"
        if self.every is not None:
            return f"{body}@every={self.every}"
        if self.p is not None:
            return f"{body}@p={self.p}"
        return f"{body}@nth={self.nth}"


@dataclass(frozen=True)
class FaultTrip:
    """One recorded injection: which site, which kind, which call."""

    site: str
    kind: str
    call_index: int


class FaultPlan:
    """A seeded, context-manager-scoped set of injection rules.

    ::

        with FaultPlan(["strategy.linear:transient@nth=1"], seed=7) as plan:
            db.xpath(query, retries=1, on_error="fallback")
        plan.trips      # [FaultTrip(site="strategy.linear", ...)]

    Plans nest: arming a plan inside another shadows the outer one and
    restores it on exit.  Per-site call counts live on the plan, so two
    plans with the same rules and seed trip identically.

    Arming is deliberately **process-wide** (not per-thread): a plan
    armed by a test's main thread must trip faultpoints hit by the
    query service's worker threads.  The mutable trip state (per-site
    call counts, the trips list, the seeded RNG) is guarded by a lock,
    so concurrent hits stay consistent — though which *thread* observes
    the nth call is of course scheduler-dependent.
    """

    def __init__(
        self,
        rules: "Iterable[FaultRule | str]",
        seed: int = 0,
    ):
        self.rules: list[FaultRule] = [
            rule if isinstance(rule, FaultRule) else FaultRule.parse(rule)
            for rule in rules
        ]
        self.seed = seed
        self.rng = random.Random(seed)
        #: per-site count of faultpoint() calls seen while armed
        self.calls: dict[str, int] = {}
        #: every injection performed, in order
        self.trips: list[FaultTrip] = []
        self._previous: "FaultPlan | None" = None
        self._sleep = time.sleep  # patchable in tests
        self._lock = threading.Lock()

    # -- arming ------------------------------------------------------------

    def __enter__(self) -> "FaultPlan":
        global _PLAN
        self._previous = _PLAN
        _PLAN = self
        return self

    def __exit__(self, *exc_info) -> None:
        global _PLAN
        _PLAN = self._previous
        self._previous = None

    # -- the hot path ------------------------------------------------------

    def _hit(self, site: str, payload: Any, mutator) -> Any:
        # trip decision + trip record are atomic: concurrent hits each
        # get a distinct call index and exactly one of them fires an
        # nth= rule; only the sleep of a latency fault happens unlocked
        with self._lock:
            fired: "FaultRule | None" = None
            count = self.calls.get(site, 0) + 1
            self.calls[site] = count
            for rule in self.rules:
                if rule.matches(site) and rule.triggers(count, self.rng):
                    fired = rule
                    self._record(site, rule.kind, count)
                    break
            if fired is not None and fired.kind == "corrupt":
                if mutator is None:
                    # the site offers nothing to corrupt — degrade the
                    # rule to a hard injected fault rather than no-op
                    raise InjectedFault(
                        site, f"injected fault at {site!r} "
                        "(corrupt requested, site has no mutator)"
                    )
                return mutator(payload, self.rng)
        if fired is None:
            return payload
        if fired.kind == "latency":
            self._sleep(fired.latency_s)
            return payload
        if fired.kind == "transient":
            raise TransientError(
                f"injected transient fault at {site!r} (call {count})"
            )
        raise InjectedFault(
            site, f"injected fault at {site!r} (call {count})"
        )

    def _record(self, site: str, kind: str, count: int) -> None:
        # imported here, not at module level: instrumented modules under
        # repro.obs (sampling, the event log) are themselves fault sites
        # and import this module, so a top-level obs import would be a
        # cycle.  Only armed trips pay the (cached) import lookup.
        from repro.obs.context import current as _obs_current
        from repro.obs.metrics import METRICS

        self.trips.append(FaultTrip(site, kind, count))
        METRICS.add("fault.trips")
        METRICS.add(f"fault.{site}")
        ctx = _obs_current()
        if ctx is not None:
            # distinct namespace from the global fault.* totals so the
            # end-of-call merge cannot double count a trip
            ctx.count("faults.injected")

    def tripped_sites(self) -> list[str]:
        """Distinct sites tripped so far, in first-trip order."""
        seen: dict[str, None] = {}
        for trip in self.trips:
            seen.setdefault(trip.site, None)
        return list(seen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rules = ", ".join(rule.spec() for rule in self.rules)
        return (
            f"FaultPlan([{rules}], seed={self.seed}, "
            f"{len(self.trips)} trips)"
        )
