"""OpenMetrics-style text rendering of a benchmark run.

``repro bench export`` turns a ``BENCH_<n>.json`` payload into the flat
exposition format scrapers and dashboards expect: one gauge per sweep
point (median/min/IQR seconds), one gauge per fitted slope, and one
counter line per recorded engine counter, all labelled by bench module
and series.  The registry-side sibling (live process metrics) is
:func:`repro.obs.export.render_openmetrics`.
"""

from __future__ import annotations

from typing import Any

__all__ = ["render_bench_openmetrics"]


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(**kv: Any) -> str:
    inner = ",".join(f'{k}="{_escape(str(v))}"' for k, v in kv.items() if v != "")
    return "{" + inner + "}" if inner else ""


def render_bench_openmetrics(payload: dict[str, Any]) -> str:
    """Render one run payload (see :mod:`repro.perf.store`) as text."""
    lines: list[str] = []
    run = payload.get("run", 0)
    lines.append("# TYPE repro_bench_run_info gauge")
    env = payload.get("environment", {})
    lines.append(
        "repro_bench_run_info"
        + _labels(
            run=run,
            schema=payload.get("schema", ""),
            python=env.get("python", ""),
            platform=env.get("platform", ""),
            fast_mode=str(bool(payload.get("fast_mode"))).lower(),
        )
        + " 1"
    )

    lines.append("# TYPE repro_bench_median gauge")
    lines.append("# TYPE repro_bench_min gauge")
    lines.append("# TYPE repro_bench_iqr gauge")
    lines.append("# TYPE repro_bench_slope gauge")
    lines.append("# TYPE repro_bench_counter counter")
    for module, record in sorted(payload.get("modules", {}).items()):
        for series_name, series in sorted(record.get("series", {}).items()):
            unit = series.get("unit", "s")
            base = _labels(module=module, series=series_name, unit=unit)
            for point in series.get("points", []):
                labels = _labels(
                    module=module, series=series_name, unit=unit,
                    size=f"{point['size']:g}",
                )
                lines.append(f"repro_bench_median{labels} {point['median']:.9g}")
                lines.append(f"repro_bench_min{labels} {point['min']:.9g}")
                lines.append(f"repro_bench_iqr{labels} {point.get('iqr', 0):.9g}")
            if series.get("slope") is not None:
                lines.append(f"repro_bench_slope{base} {series['slope']:.4g}")
        for counter, total in sorted(record.get("counters", {}).items()):
            labels = _labels(module=module, name=counter)
            lines.append(f"repro_bench_counter_total{labels} {total}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
