"""Performance observability: benchmark telemetry, baselines, and
regression tracking.

The bench suite (``benchmarks/bench_*.py``) measures the paper's
complexity claims; this package makes those measurements durable and
comparable:

- :class:`~repro.perf.record.BenchRecorder` (via the process-wide
  :data:`RECORDER`) collects per-module report tables, size-sweep
  series with min/median/IQR samples, fitted log-log slopes and growth
  classes, and the :data:`repro.obs.METRICS` counter/duration deltas;
- :mod:`repro.perf.store` writes/reads the numbered ``BENCH_<n>.json``
  run files at the repository root (schema ``repro.perf.bench/1`` with
  an environment fingerprint);
- :func:`~repro.perf.compare.compare_runs` diffs a run against a
  baseline with noise-aware ratio bands — growth-class changes are
  always failures;
- :func:`~repro.perf.runner.run_benchmarks` drives the whole sweep
  (the engine behind ``repro bench run``).

See the "Benchmark telemetry" section of docs/OBSERVABILITY.md.
"""

from repro.perf.compare import ComparisonReport, Finding, compare_runs
from repro.perf.openmetrics import render_bench_openmetrics
from repro.perf.record import RECORDER, BenchRecorder, BenchSeries, Sample
from repro.perf.runner import RunOutcome, run_benchmarks
from repro.perf.store import (
    SCHEMA,
    environment_fingerprint,
    latest_runs,
    list_runs,
    load_run,
    validate_payload,
    write_run,
)

__all__ = [
    "RECORDER",
    "SCHEMA",
    "BenchRecorder",
    "BenchSeries",
    "ComparisonReport",
    "Finding",
    "RunOutcome",
    "Sample",
    "compare_runs",
    "environment_fingerprint",
    "latest_runs",
    "list_runs",
    "load_run",
    "render_bench_openmetrics",
    "run_benchmarks",
    "validate_payload",
    "write_run",
]
