"""Canonical ``BENCH_<n>.json`` run files at the repository root.

One benchmark run = one numbered JSON document (``BENCH_0001.json``,
``BENCH_0002.json``, ...) so the perf trajectory of the repo is an
append-only sequence the comparator can walk.  Every file carries the
schema version and an environment fingerprint; runs from different
machines are still comparable on growth classes and counters, while the
comparator treats raw timings from mismatched environments with wider
suspicion (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import datetime as _dt
import json
import os
import platform
import re
import sys
from typing import Any

__all__ = [
    "SCHEMA",
    "environment_fingerprint",
    "make_payload",
    "write_run",
    "list_runs",
    "latest_runs",
    "load_run",
    "validate_payload",
]

SCHEMA = "repro.perf.bench/1"

_RUN_RE = re.compile(r"^BENCH_(\d+)\.json$")


def environment_fingerprint() -> dict[str, Any]:
    """Where a run was produced — enough to judge comparability."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def make_payload(
    modules: dict[str, Any],
    run: int,
    fast_mode: bool,
    pytest_exit: int = 0,
) -> dict[str, Any]:
    return {
        "schema": SCHEMA,
        "run": run,
        "created": _dt.datetime.now(_dt.timezone.utc).isoformat(timespec="seconds"),
        "fast_mode": bool(fast_mode),
        "environment": environment_fingerprint(),
        "pytest_exit": int(pytest_exit),
        "modules": modules,
    }


def list_runs(root: str = ".") -> list[str]:
    """All run files under ``root``, ordered by run number."""
    entries = []
    for name in os.listdir(root or "."):
        match = _RUN_RE.match(name)
        if match:
            entries.append((int(match.group(1)), os.path.join(root, name)))
    return [path for _, path in sorted(entries)]


def _next_run_number(root: str) -> int:
    numbers = [
        int(_RUN_RE.match(name).group(1))
        for name in os.listdir(root or ".")
        if _RUN_RE.match(name)
    ]
    return max(numbers, default=0) + 1


def write_run(
    modules: dict[str, Any],
    root: str = ".",
    fast_mode: bool = False,
    pytest_exit: int = 0,
) -> str:
    """Write the next ``BENCH_<n>.json`` in sequence; returns its path."""
    os.makedirs(root or ".", exist_ok=True)
    run = _next_run_number(root)
    payload = make_payload(modules, run, fast_mode, pytest_exit)
    errors = validate_payload(payload)
    if errors:
        raise ValueError("refusing to write invalid run file: " + "; ".join(errors))
    path = os.path.join(root, f"BENCH_{run:04d}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def load_run(path: str) -> dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    errors = validate_payload(payload)
    if errors:
        raise ValueError(f"{path}: not a valid bench run file: " + "; ".join(errors))
    return payload


def latest_runs(root: str = ".", count: int = 2) -> list[str]:
    """The last ``count`` run files (oldest first)."""
    runs = list_runs(root)
    return runs[-count:]


def validate_payload(payload: Any) -> list[str]:
    """Light structural validation; returns a list of problems."""
    errors: list[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("schema") != SCHEMA:
        errors.append(f"schema is {payload.get('schema')!r}, expected {SCHEMA!r}")
    if not isinstance(payload.get("run"), int):
        errors.append("missing integer 'run'")
    if not isinstance(payload.get("environment"), dict):
        errors.append("missing 'environment' fingerprint")
    modules = payload.get("modules")
    if not isinstance(modules, dict):
        errors.append("missing 'modules' mapping")
        return errors
    for name, record in modules.items():
        if not isinstance(record, dict):
            errors.append(f"module {name}: record is not an object")
            continue
        for key in ("status", "tables", "series", "counters"):
            if key not in record:
                errors.append(f"module {name}: missing {key!r}")
        for series_name, series in record.get("series", {}).items():
            if not isinstance(series, dict) or "points" not in series:
                errors.append(f"module {name}: series {series_name} has no points")
                continue
            for point in series["points"]:
                if not {"size", "median"} <= set(point):
                    errors.append(
                        f"module {name}: series {series_name} point "
                        f"missing size/median"
                    )
                    break
    return errors
