"""Benchmark telemetry recording: samples, series, and the recorder.

The bench suite's measurements flow through three layers:

- :class:`Sample` — one timed measurement: median wall-clock seconds
  (the value, ``Sample`` *is* a float) plus the spread that makes the
  number interpretable later (min, interquartile range, repeat count).
- :class:`BenchSeries` — one metric swept over sizes, with the fitted
  log-log slope and growth class from :mod:`repro.complexity`.
- :class:`BenchRecorder` — the process-wide sink every
  ``benchmarks/bench_*.py`` reports into (via ``_benchutil.report`` /
  ``record_series``), grouped per bench module, with the
  :data:`repro.obs.METRICS` counter/duration deltas captured per
  module.

The recorder's :meth:`~BenchRecorder.as_dict` payload is what
:mod:`repro.perf.store` wraps into a ``BENCH_<n>.json`` run file and
what :mod:`repro.perf.compare` diffs between runs.
"""

from __future__ import annotations

import statistics
from typing import Any, Iterable, Mapping, Sequence

__all__ = ["Sample", "BenchSeries", "BenchRecorder", "RECORDER", "slugify"]

#: medians below this (seconds) are treated as timer noise by the
#: comparator and by the series confidence flag
NOISE_FLOOR_S = 2e-3


class Sample(float):
    """One timed measurement; the float value is the median seconds.

    Being a float subclass keeps every existing benchmark idiom working
    (ratios, comparisons, ``f"{t:.5f}"``) while carrying the spread the
    telemetry needs: ``Sample(min, median, iqr, repeats)``.
    """

    __slots__ = ("min", "iqr", "repeats")

    def __new__(cls, min: float, median: float, iqr: float = 0.0, repeats: int = 1):
        self = float.__new__(cls, median)
        self.min = float(min)
        self.iqr = float(iqr)
        self.repeats = int(repeats)
        return self

    @property
    def median(self) -> float:
        return float(self)

    @property
    def rel_iqr(self) -> float:
        """IQR relative to the median — the noise level of the sample."""
        return self.iqr / max(self.median, 1e-12)

    @classmethod
    def from_times(cls, times: Sequence[float]) -> "Sample":
        """Summarize raw per-repeat wall-clock times."""
        ts = sorted(times)
        if not ts:
            raise ValueError("need at least one time sample")
        if len(ts) >= 2:
            q1, _, q3 = statistics.quantiles(ts, n=4, method="inclusive")
            iqr = q3 - q1
        else:
            iqr = 0.0
        return cls(ts[0], statistics.median(ts), iqr, len(ts))

    @classmethod
    def from_value(cls, value: float) -> "Sample":
        """Wrap a single deterministic value (a count, a memory peak)."""
        return cls(value, value, 0.0, 1)

    def to_dict(self) -> dict[str, Any]:
        return {
            "min": round(self.min, 9),
            "median": round(self.median, 9),
            "iqr": round(self.iqr, 9),
            "repeats": self.repeats,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Sample(min={self.min:.6f}, median={self.median:.6f}, "
            f"iqr={self.iqr:.6f}, repeats={self.repeats})"
        )


def slugify(text: str, max_len: int = 64) -> str:
    """A filesystem/metric-safe slug: lowercase alnum runs joined by '-'."""
    out: list[str] = []
    word: list[str] = []
    for ch in text.lower():
        if ch.isalnum():
            word.append(ch)
        elif word:
            out.append("".join(word))
            word = []
    if word:
        out.append("".join(word))
    return "-".join(out)[:max_len].strip("-") or "metric"


class BenchSeries:
    """One metric over a size sweep, with its fitted growth shape."""

    __slots__ = ("name", "unit", "points")

    def __init__(self, name: str, unit: str = "s"):
        self.name = name
        self.unit = unit  # "s" for seconds, "n" for dimensionless counts
        self.points: list[tuple[float, Sample]] = []

    def add(self, size: float, sample: "Sample | float | int") -> None:
        if not isinstance(sample, Sample):
            sample = Sample.from_value(float(sample))
        self.points.append((float(size), sample))

    # -- derived shape -----------------------------------------------------

    def slope(self) -> "float | None":
        """Fitted log-log slope, or None with <2 distinct positive sizes."""
        from repro.complexity import ScalingPoint, fit_loglog_slope

        pts = [
            ScalingPoint(int(size), max(float(sample), 1e-9))
            for size, sample in self.points
            if size > 0
        ]
        if len({p.size for p in pts}) < 2:
            return None
        return fit_loglog_slope(pts)

    def growth(self) -> "str | None":
        from repro.complexity import growth_class_from_slope

        slope = self.slope()
        return None if slope is None else growth_class_from_slope(slope)

    @property
    def confident(self) -> bool:
        """Whether the growth class is trustworthy enough to gate on:
        at least three sweep points, and (for timings) a largest median
        above the noise floor."""
        if len(self.points) < 3:
            return False
        if self.unit == "s":
            return max(float(s) for _, s in self.points) >= NOISE_FLOOR_S
        return True

    def to_dict(self) -> dict[str, Any]:
        slope = self.slope()
        return {
            "unit": self.unit,
            "points": [
                {"size": size, **sample.to_dict()} for size, sample in self.points
            ],
            "slope": None if slope is None else round(slope, 4),
            "growth": self.growth(),
            "confident": self.confident,
        }


def _json_safe(cell: Any) -> Any:
    if isinstance(cell, Sample):
        return round(float(cell), 9)
    if isinstance(cell, bool) or cell is None:
        return cell
    if isinstance(cell, (int, float, str)):
        return cell
    return str(cell)


class BenchRecorder:
    """The process-wide telemetry sink of the benchmark suite.

    ``begin_module``/``end_module`` bracket one ``bench_*`` module
    (driven by the autouse fixture in :mod:`repro.perf.hooks`);
    ``record_table`` keeps the printed report rows *and* derives size
    series from them, so the text table and the JSON telemetry can never
    disagree; ``record_series`` is the explicit route for modules that
    build their sweeps directly.
    """

    #: module bucket used when recording happens outside pytest
    ADHOC = "adhoc"

    def __init__(self):
        self._modules: dict[str, dict[str, Any]] = {}
        self._active: "str | None" = None
        self._metrics_base: dict[str, Any] = {}

    # -- module lifecycle --------------------------------------------------

    def _module(self, name: "str | None" = None) -> dict[str, Any]:
        key = name or self._active or self.ADHOC
        if key not in self._modules:
            self._modules[key] = {
                "status": "passed",
                "failures": [],
                "tables": [],
                "series": {},
                "counters": {},
                "durations": {},
            }
        return self._modules[key]

    def begin_module(self, name: str) -> None:
        from repro.obs import METRICS

        self._module(name)
        self._active = name
        self._metrics_base = {
            "counters": METRICS.snapshot(),
            "durations": {
                key: (hist["count"], hist["sum"])
                for key, hist in METRICS.durations().items()
            },
        }

    def end_module(self, name: str) -> None:
        """Close a module: fold in the METRICS delta since ``begin``."""
        from repro.obs import METRICS

        record = self._module(name)
        base_counters = self._metrics_base.get("counters", {})
        for key, total in METRICS.snapshot().items():
            delta = total - base_counters.get(key, 0)
            if delta:
                record["counters"][key] = record["counters"].get(key, 0) + delta
        base_durations = self._metrics_base.get("durations", {})
        for key, hist in METRICS.durations().items():
            count0, sum0 = base_durations.get(key, (0, 0.0))
            dcount = hist["count"] - count0
            if dcount <= 0:
                continue
            entry = dict(hist)
            entry["count"] = dcount
            entry["sum"] = round(hist["sum"] - sum0, 9)
            if count0:  # percentiles describe the whole histogram only
                for quantile in ("p50", "p90", "p99", "min", "max"):
                    entry.pop(quantile, None)
            record["durations"][key] = entry
        if self._active == name:
            self._active = None
        self._metrics_base = {}

    def mark_failed(self, name: str, nodeid: str) -> None:
        record = self._module(name)
        record["status"] = "failed"
        record["failures"].append(nodeid)

    @property
    def active_module(self) -> "str | None":
        return self._active

    # -- recording ---------------------------------------------------------

    def record_table(
        self,
        title: str,
        headers: Sequence[str],
        rows: Iterable[Sequence[Any]],
        module: "str | None" = None,
    ) -> list[BenchSeries]:
        """Keep one report table and derive size series from it.

        A column becomes a series when the first column is numeric in
        every row (the sweep size) and the column holds :class:`Sample`
        values (seconds) or plain ints (deterministic counts) in every
        row.  The derived series are returned so the caller can print
        the fitted shapes next to the table.
        """
        record = self._module(module)
        rows = [list(r) for r in rows]
        record["tables"].append(
            {
                "title": title,
                "headers": [str(h) for h in headers],
                "rows": [[_json_safe(c) for c in row] for row in rows],
            }
        )
        derived = self._derive_series(title, headers, rows)
        for series in derived:
            self._store_series(record, series)
        return derived

    def _derive_series(
        self, title: str, headers: Sequence[str], rows: list[list[Any]]
    ) -> list[BenchSeries]:
        if len(rows) < 2:
            return []
        widths = {len(r) for r in rows}
        if widths != {len(headers)}:
            return []

        def numeric(cell: Any) -> bool:
            return isinstance(cell, (int, float)) and not isinstance(cell, bool)

        if not all(numeric(r[0]) for r in rows):
            return []
        table_slug = slugify(title)
        out: list[BenchSeries] = []
        for j in range(1, len(headers)):
            column = [r[j] for r in rows]
            if all(isinstance(c, Sample) for c in column):
                unit = "s"
            elif all(isinstance(c, int) and not isinstance(c, bool) for c in column):
                unit = "n"
            else:
                continue
            series = BenchSeries(f"{table_slug}/{slugify(str(headers[j]))}", unit)
            for row, cell in zip(rows, column):
                series.add(float(row[0]), cell)
            out.append(series)
        return out

    def record_series(
        self,
        name: str,
        points: Iterable[Any],
        unit: str = "s",
        module: "str | None" = None,
    ) -> BenchSeries:
        """Record an explicit sweep: points are ``(size, value)`` pairs
        or objects with ``size``/``seconds`` attributes
        (:class:`~repro.complexity.ScalingPoint` included)."""
        series = BenchSeries(slugify(name, max_len=96), unit)
        for point in points:
            if hasattr(point, "size") and hasattr(point, "seconds"):
                series.add(point.size, point.seconds)
            else:
                size, value = point
                series.add(size, value)
        self._store_series(self._module(module), series)
        return series

    def _store_series(self, record: dict[str, Any], series: BenchSeries) -> None:
        name, k = series.name, 2
        while name in record["series"]:
            name = f"{series.name}-{k}"
            k += 1
        series.name = name
        record["series"][name] = series

    def record_counters(
        self, counters: Mapping[str, int], module: "str | None" = None
    ) -> None:
        """Explicitly fold a counter snapshot into the current module
        (for benches that reset :data:`repro.obs.METRICS` themselves)."""
        record = self._module(module)
        for key, value in counters.items():
            record["counters"][key] = record["counters"].get(key, 0) + value

    # -- export ------------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """The ``modules`` payload of a ``BENCH_<n>.json`` run file."""
        out: dict[str, Any] = {}
        for name in sorted(self._modules):
            record = self._modules[name]
            out[name] = {
                "status": record["status"],
                "failures": list(record["failures"]),
                "tables": record["tables"],
                "series": {
                    key: series.to_dict()
                    for key, series in sorted(record["series"].items())
                },
                "counters": dict(sorted(record["counters"].items())),
                "durations": dict(sorted(record["durations"].items())),
            }
        return out

    def reset(self) -> None:
        self._modules.clear()
        self._active = None
        self._metrics_base = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BenchRecorder({len(self._modules)} modules, active={self._active!r})"


#: the process-wide recorder the bench suite reports into
RECORDER = BenchRecorder()
