"""Noise-aware comparison of two benchmark runs.

The comparator answers one question: *did a route regress since the
baseline?* — without flaking on shared-runner noise.  The rules, in
order of authority:

- **growth classes are the contract.**  A confident growth-class change
  (both runs have ≥3 sweep points and timings above the noise floor) is
  always a failure, whatever the raw timings say: the paper's claims
  are complexity shapes, not milliseconds.  One carve-out: when the two
  fitted slopes sit within ``SLOPE_JITTER`` of each other the series is
  straddling a class boundary (e.g. 0.48 vs 0.52 around the
  constant/linear cut) — that is measurement jitter, not a complexity
  change, and is reported as a warning.  A real regression (linear →
  quadratic) moves the fitted slope by ≈1.0, far beyond the jitter
  allowance.
- **timings get ratio bands.**  Per matched sweep size, the new median
  must stay within ``band × (1 + rel_IQR_old + rel_IQR_new)`` of the
  old one; sub-noise-floor pairs are skipped.  Timing breaches can be
  downgraded to warnings (``timing_fail=False``) for shared CI runners.
- **counts are deterministic.**  Series in unit ``"n"`` (memory peaks,
  search-tree sizes, output cardinalities) use the bare band with no
  noise widening, and keep failing even in timing-warn-only mode — a
  count drift is a behaviour change, not scheduler jitter.
- coverage losses (module or series present in the baseline but absent
  from the new run) are warnings; new coverage is informational.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.perf.record import NOISE_FLOOR_S

__all__ = ["Finding", "ComparisonReport", "compare_runs", "SLOPE_JITTER"]

#: Two fitted slopes closer than this are treated as the same shape even
#: when they land in different growth classes (boundary straddle).
SLOPE_JITTER = 0.25

FAIL = "fail"
WARN = "warn"
INFO = "info"

_SEVERITY_ORDER = {FAIL: 0, WARN: 1, INFO: 2}


@dataclass(frozen=True)
class Finding:
    severity: str  # fail | warn | info
    module: str
    metric: str
    message: str

    def render(self) -> str:
        where = f"{self.module}/{self.metric}" if self.metric else self.module
        return f"{self.severity.upper():4s} {where}: {self.message}"


@dataclass
class ComparisonReport:
    old_run: int
    new_run: int
    band: float
    timing_fail: bool
    findings: list[Finding] = field(default_factory=list)
    series_compared: int = 0

    @property
    def failures(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == FAIL]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def render(self) -> str:
        lines = [
            f"bench compare: run {self.old_run} (baseline) -> run {self.new_run}",
            f"  band x{self.band:.2f}, timing breaches "
            + ("fail" if self.timing_fail else "warn only")
            + f"; {self.series_compared} series compared",
        ]
        shown = sorted(
            self.findings,
            key=lambda f: (_SEVERITY_ORDER[f.severity], f.module, f.metric),
        )
        for finding in shown:
            lines.append("  " + finding.render())
        counts = {
            severity: sum(1 for f in self.findings if f.severity == severity)
            for severity in (FAIL, WARN, INFO)
        }
        lines.append(
            f"  verdict: {'REGRESSION' if not self.ok else 'ok'} "
            f"({counts[FAIL]} fail, {counts[WARN]} warn, {counts[INFO]} info)"
        )
        return "\n".join(lines)


def _series_points(series: dict[str, Any]) -> dict[float, dict[str, Any]]:
    return {float(p["size"]): p for p in series.get("points", [])}


def _rel_iqr(point: dict[str, Any]) -> float:
    return float(point.get("iqr", 0.0)) / max(float(point["median"]), 1e-12)


def _compare_series(
    module: str,
    name: str,
    old: dict[str, Any],
    new: dict[str, Any],
    band: float,
    timing_fail: bool,
    findings: list[Finding],
) -> None:
    unit = new.get("unit", old.get("unit", "s"))
    if old.get("unit") != new.get("unit"):
        findings.append(
            Finding(WARN, module, name,
                    f"unit changed {old.get('unit')!r} -> {new.get('unit')!r}")
        )
        return

    # growth classes: the always-on gate
    old_growth, new_growth = old.get("growth"), new.get("growth")
    if old_growth and new_growth and old_growth != new_growth:
        confident = old.get("confident") and new.get("confident")
        old_slope, new_slope = old.get("slope"), new.get("slope")
        boundary_jitter = (
            isinstance(old_slope, (int, float))
            and isinstance(new_slope, (int, float))
            and abs(float(new_slope) - float(old_slope)) < SLOPE_JITTER
        )
        hard_fail = confident and not boundary_jitter
        findings.append(
            Finding(
                FAIL if hard_fail else WARN,
                module,
                name,
                f"growth class changed: {old_growth} -> {new_growth} "
                f"(slopes {old_slope} -> {new_slope}"
                + ("" if confident else ", low confidence")
                + (", boundary jitter" if boundary_jitter else "")
                + ")",
            )
        )
        if hard_fail:
            return  # the class flip is the headline; skip ratio noise

    # per-size ratio bands
    old_points, new_points = _series_points(old), _series_points(new)
    common = sorted(set(old_points) & set(new_points))
    if not common:
        findings.append(
            Finding(INFO, module, name, "no common sweep sizes; timings not compared")
        )
        return
    worst: "tuple[float, float, float, float, float] | None" = None
    best: "tuple[float, float, float] | None" = None
    for size in common:
        o, n = old_points[size], new_points[size]
        old_median, new_median = float(o["median"]), float(n["median"])
        if unit == "s" and max(old_median, new_median) < NOISE_FLOOR_S:
            continue  # both sides below the noise floor: pure jitter
        ratio = (new_median + 1e-12) / (old_median + 1e-12)
        if unit == "s":
            allowed = band * (1.0 + min(_rel_iqr(o) + _rel_iqr(n), 1.0))
        else:
            allowed = band
        if worst is None or ratio / allowed > worst[0] / worst[1]:
            worst = (ratio, allowed, size, old_median, new_median)
        if best is None or ratio < best[0]:
            best = (ratio, size, allowed)
    if worst is None:
        return
    ratio, allowed, size, old_median, new_median = worst
    if ratio > allowed:
        severity = FAIL if (timing_fail or unit == "n") else WARN
        findings.append(
            Finding(
                severity,
                module,
                name,
                f"regressed x{ratio:.2f} at size {size:g} "
                f"({old_median:.6g} -> {new_median:.6g}, allowed x{allowed:.2f})",
            )
        )
    elif best is not None and best[0] < 1.0 / best[2]:
        findings.append(
            Finding(INFO, module, name,
                    f"improved x{1.0 / best[0]:.2f} at size {best[1]:g}")
        )


def _compare_counters(
    module: str,
    old: dict[str, Any],
    new: dict[str, Any],
    band: float,
    findings: list[Finding],
) -> None:
    for key in sorted(set(old) & set(new)):
        old_value, new_value = old[key], new[key]
        if not old_value and not new_value:
            continue
        ratio = (new_value + 1e-9) / (old_value + 1e-9)
        if ratio > band or ratio < 1.0 / band:
            findings.append(
                Finding(
                    WARN, module, f"counter:{key}",
                    f"counter moved x{ratio:.2f} ({old_value} -> {new_value})",
                )
            )


def compare_runs(
    old: dict[str, Any],
    new: dict[str, Any],
    band: float = 1.6,
    timing_fail: bool = True,
) -> ComparisonReport:
    """Diff two run payloads (as loaded by :func:`repro.perf.store.load_run`)."""
    report = ComparisonReport(
        old_run=old.get("run", 0),
        new_run=new.get("run", 0),
        band=band,
        timing_fail=timing_fail,
    )
    findings = report.findings

    if old.get("fast_mode") != new.get("fast_mode"):
        findings.append(
            Finding(WARN, "run", "",
                    f"fast_mode differs ({old.get('fast_mode')} vs "
                    f"{new.get('fast_mode')}): sweep ladders likely disjoint")
        )
    old_env, new_env = old.get("environment", {}), new.get("environment", {})
    for key in sorted(set(old_env) | set(new_env)):
        if old_env.get(key) != new_env.get(key):
            findings.append(
                Finding(INFO, "env", key,
                        f"{old_env.get(key)!r} -> {new_env.get(key)!r}")
            )

    old_modules, new_modules = old.get("modules", {}), new.get("modules", {})
    for name in sorted(set(old_modules) - set(new_modules)):
        findings.append(Finding(WARN, name, "", "module missing from new run"))
    for name in sorted(set(new_modules) - set(old_modules)):
        findings.append(Finding(INFO, name, "", "new module (no baseline)"))

    for name in sorted(set(old_modules) & set(new_modules)):
        old_record, new_record = old_modules[name], new_modules[name]
        if new_record.get("status") == "failed":
            findings.append(
                Finding(FAIL, name, "",
                        "module failed: " + ", ".join(new_record.get("failures", [])))
            )
        old_series = old_record.get("series", {})
        new_series = new_record.get("series", {})
        for series_name in sorted(set(old_series) - set(new_series)):
            findings.append(
                Finding(WARN, name, series_name, "series missing from new run")
            )
        for series_name in sorted(set(new_series) - set(old_series)):
            findings.append(
                Finding(INFO, name, series_name, "new series (no baseline)")
            )
        for series_name in sorted(set(old_series) & set(new_series)):
            report.series_compared += 1
            _compare_series(
                name, series_name, old_series[series_name],
                new_series[series_name], band, timing_fail, findings,
            )
        _compare_counters(
            name, old_record.get("counters", {}), new_record.get("counters", {}),
            max(band, 2.0), findings,
        )
    return report
