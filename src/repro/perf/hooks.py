"""Pytest glue for benchmark telemetry.

``benchmarks/conftest.py`` imports these names so that:

- every ``bench_*`` module is bracketed by
  :meth:`~repro.perf.record.BenchRecorder.begin_module` /
  ``end_module`` (capturing the :data:`repro.obs.METRICS` delta the
  module's workload produced),
- test failures mark their module's telemetry record as failed,
- when ``REPRO_BENCH_RECORD`` points at a file (set by
  :func:`repro.perf.runner.run_benchmarks`), the recorder payload is
  written there at session end.

Import into a conftest with::

    from repro.perf.hooks import (  # noqa: F401
        _bench_telemetry_module, pytest_runtest_logreport, pytest_sessionfinish,
    )
"""

from __future__ import annotations

import json
import os

import pytest

from repro.perf.record import RECORDER
from repro.perf.runner import RECORD_ENV

__all__ = [
    "_bench_telemetry_module",
    "pytest_runtest_logreport",
    "pytest_sessionfinish",
]


@pytest.fixture(autouse=True, scope="module")
def _bench_telemetry_module(request):
    name = request.module.__name__
    RECORDER.begin_module(name)
    yield
    RECORDER.end_module(name)


def _module_of(nodeid: str) -> str:
    filename = nodeid.split("::", 1)[0]
    return os.path.splitext(os.path.basename(filename))[0]


def pytest_runtest_logreport(report):
    if report.failed and report.when in ("setup", "call"):
        RECORDER.mark_failed(_module_of(report.nodeid), report.nodeid)


def pytest_sessionfinish(session, exitstatus):
    path = os.environ.get(RECORD_ENV)
    if not path:
        return
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"modules": RECORDER.as_dict()}, fh, indent=2)
        fh.write("\n")
