"""Drive the bench suite and persist a telemetry run.

``run_benchmarks`` launches pytest on ``benchmarks/`` in a subprocess
(hash seed pinned for deterministic counters, ``pytest-benchmark``-style
micro-bench tests deselected — the telemetry sweeps are the product
here), has the suite's :data:`repro.perf.RECORDER` payload written to a
handoff file by the ``pytest_sessionfinish`` hook in
:mod:`repro.perf.hooks`, and wraps it into the next ``BENCH_<n>.json``
at the output root.  This is what ``repro bench run`` calls, so perf
tracking works identically from the CLI, CI, and cron — no pytest
invocation knowledge required.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass

from repro.perf import store

__all__ = ["RunOutcome", "run_benchmarks", "RECORD_ENV", "FAST_ENV"]

#: handoff file the in-suite hook writes the recorder payload to
RECORD_ENV = "REPRO_BENCH_RECORD"
#: the bench suite's own smoke-mode switch
FAST_ENV = "REPRO_BENCH_FAST"


@dataclass
class RunOutcome:
    pytest_exit: int
    path: "str | None"  # the BENCH_<n>.json written, if any
    modules: int
    series: int


def _repro_src_dir() -> str:
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def run_benchmarks(
    benchmarks_dir: str = "benchmarks",
    out_dir: str = ".",
    select: "str | None" = None,
    fast: "bool | None" = None,
    extra_pytest_args: "tuple[str, ...]" = (),
) -> RunOutcome:
    """Run the sweep and write the next run file; see module docstring.

    ``fast=None`` inherits ``REPRO_BENCH_FAST`` from the environment;
    True/False force it.  ``select`` is a pytest ``-k`` expression.
    """
    if not os.path.isdir(benchmarks_dir):
        raise FileNotFoundError(f"benchmark directory not found: {benchmarks_dir}")

    handle, record_path = tempfile.mkstemp(prefix="repro-bench-", suffix=".json")
    os.close(handle)
    os.unlink(record_path)  # the hook creates it; absence means no telemetry

    env = os.environ.copy()
    env[RECORD_ENV] = record_path
    # deterministic str hashing => deterministic counter/memory series
    env.setdefault("PYTHONHASHSEED", "0")
    if fast is True:
        env[FAST_ENV] = "1"
    elif fast is False:
        env.pop(FAST_ENV, None)
    fast_effective = env.get(FAST_ENV, "") not in ("", "0")
    src = _repro_src_dir()
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )

    cmd = [
        sys.executable, "-m", "pytest", benchmarks_dir,
        "-q", "-p", "no:cacheprovider", "-m", "not benchmark",
    ]
    if select:
        cmd += ["-k", select]
    cmd += list(extra_pytest_args)

    proc = subprocess.run(cmd, env=env)

    try:
        with open(record_path, "r", encoding="utf-8") as fh:
            recorded = json.load(fh)
    except FileNotFoundError:
        return RunOutcome(proc.returncode or 1, None, 0, 0)
    finally:
        try:
            os.unlink(record_path)
        except FileNotFoundError:
            pass

    modules = recorded.get("modules", {})
    path = store.write_run(
        modules, root=out_dir, fast_mode=fast_effective, pytest_exit=proc.returncode
    )
    series = sum(len(m.get("series", {})) for m in modules.values())
    return RunOutcome(proc.returncode, path, len(modules), series)
