"""Minoux' linear-time unit-resolution algorithm for Horn-SAT.

This is a direct transcription of Figure 3 of the paper ("algorithm
Minoux(propositional Horn formula Φ)"), generalized only in that atoms
are arbitrary hashable values rather than integers:

- ``rules[p]`` lists the clauses whose *body* contains atom ``p``,
- ``size[i]`` counts the not-yet-derived body atoms of clause ``i``,
- ``head[i]`` is the clause head,
- the queue holds atoms derived but not yet propagated.

Each body occurrence of each atom is touched at most once overall, so
the running time is O(||Φ||) — the bound Theorem 3.2 builds on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable

from repro.hornsat.program import HornProgram
from repro.obs.context import current as _obs_current

__all__ = ["minoux", "MinouxTrace"]

Atom = Hashable


@dataclass
class MinouxTrace:
    """Optional instrumentation of a :func:`minoux` run.

    ``derivation_order`` is the sequence in which atoms were output (the
    order the paper's worked Example 3.3 steps through), and
    ``decrements`` counts size[] updates — the unit of work whose total
    is bounded by ||Φ||.
    """

    derivation_order: list[Atom] = field(default_factory=list)
    decrements: int = 0


def minoux(
    program: HornProgram,
    trace: MinouxTrace | None = None,
) -> tuple[set[Atom], bool]:
    """Run Minoux' algorithm.

    Returns ``(true_atoms, satisfiable)``: the minimal model of the
    definite part of the program, and False iff some negative clause
    (goal constraint) fired — for purely definite programs the second
    component is always True.
    """
    ctx = _obs_current()
    clauses = program.clauses
    # initialization of data structures (Figure 3)
    size = [len(clause.body) for clause in clauses]
    rules: dict[Atom, list[int]] = {}
    queue: deque[Atom] = deque()
    true_atoms: set[Atom] = set()

    # Distinct body atoms only: duplicate atoms in one body must not make
    # the clause fire early, so deduplicate while counting.
    for i, clause in enumerate(clauses):
        distinct = set(clause.body)
        size[i] = len(distinct)
        for p in distinct:
            rules.setdefault(p, []).append(i)
        if size[i] == 0:
            if clause.head is None:
                return set(), False  # empty negative clause: trivially unsat
            if clause.head not in true_atoms:
                true_atoms.add(clause.head)
                queue.append(clause.head)

    # main loop (Figure 3)
    decrements = 0
    firings = 0
    satisfiable = True
    while queue:
        p = queue.popleft()
        if ctx is not None:
            ctx.tick()
        if trace is not None:
            trace.derivation_order.append(p)
        for i in rules.get(p, ()):
            size[i] -= 1
            decrements += 1
            if trace is not None:
                trace.decrements += 1
            if size[i] == 0:
                firings += 1
                head = clauses[i].head
                if head is None:
                    satisfiable = False
                    queue.clear()
                    break
                if head not in true_atoms:
                    true_atoms.add(head)
                    queue.append(head)
        if not satisfiable:
            break
    if ctx is not None:
        ctx.count("minoux.decrements", decrements)
        ctx.count("minoux.rule_firings", firings)
        ctx.count("minoux.atoms_derived", len(true_atoms))
    if not satisfiable:
        return true_atoms, False
    return true_atoms, True
