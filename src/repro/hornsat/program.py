"""Propositional Horn programs.

A definite Horn clause is ``head <- body_1, ..., body_k`` (k >= 0);
facts are clauses with an empty body.  Atoms may be any hashable Python
values — the datalog grounder uses tuples like ``("P", 3)`` and the
arc-consistency encoder uses ``("Theta", x, v)``.

A clause may also be a *goal constraint* with ``head=None``
(``<- body``): if its body becomes derivable the program is
unsatisfiable.  The paper's Figure 3 deals with definite programs only;
constraints are a strict extension used by a few tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator

__all__ = ["HornClause", "HornProgram"]

Atom = Hashable


@dataclass(frozen=True)
class HornClause:
    """One propositional Horn clause ``head <- body``.

    ``head is None`` encodes a negative clause (goal constraint).
    """

    head: Atom | None
    body: tuple[Atom, ...] = ()

    def is_fact(self) -> bool:
        return self.head is not None and not self.body

    def is_constraint(self) -> bool:
        return self.head is None

    def __str__(self) -> str:
        head = "" if self.head is None else repr(self.head)
        if not self.body:
            return f"{head} <-"
        return f"{head} <- " + ", ".join(repr(b) for b in self.body)


@dataclass
class HornProgram:
    """A list of Horn clauses with convenience constructors and stats."""

    clauses: list[HornClause] = field(default_factory=list)

    def fact(self, head: Atom) -> "HornProgram":
        """Append a fact ``head <-`` (chainable)."""
        self.clauses.append(HornClause(head))
        return self

    def rule(self, head: Atom, *body: Atom) -> "HornProgram":
        """Append a rule ``head <- body`` (chainable)."""
        self.clauses.append(HornClause(head, tuple(body)))
        return self

    def constraint(self, *body: Atom) -> "HornProgram":
        """Append a negative clause ``<- body`` (chainable)."""
        self.clauses.append(HornClause(None, tuple(body)))
        return self

    def extend(self, clauses: Iterable[HornClause]) -> "HornProgram":
        self.clauses.extend(clauses)
        return self

    def atoms(self) -> set[Atom]:
        """All atoms mentioned anywhere in the program."""
        result: set[Atom] = set()
        for clause in self.clauses:
            if clause.head is not None:
                result.add(clause.head)
            result.update(clause.body)
        return result

    def size(self) -> int:
        """||P|| — total number of atom occurrences (the size measure the
        linear-time bound of Figure 3 is stated against)."""
        return sum(
            (0 if clause.head is None else 1) + len(clause.body)
            for clause in self.clauses
        )

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[HornClause]:
        return iter(self.clauses)
