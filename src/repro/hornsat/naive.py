"""Naive fixpoint evaluation of Horn programs — the baseline for E3.

Repeatedly scans the whole clause list, firing every clause whose body is
already known true, until a full pass derives nothing new.  Worst case
this makes O(#atoms) passes of O(||Φ||) work each — the quadratic
behaviour that Minoux' algorithm (Figure 3) eliminates.  The benchmark
``bench_fig3_minoux.py`` exhibits the separation on derivation chains.
"""

from __future__ import annotations

from typing import Hashable

from repro.hornsat.program import HornProgram

__all__ = ["naive_fixpoint"]

Atom = Hashable


def naive_fixpoint(program: HornProgram) -> tuple[set[Atom], bool]:
    """Compute the minimal model by repeated whole-program scans.

    Same contract as :func:`repro.hornsat.minoux.minoux`.
    """
    true_atoms: set[Atom] = set()
    changed = True
    while changed:
        changed = False
        for clause in program.clauses:
            if clause.head is not None and clause.head in true_atoms:
                continue
            if all(atom in true_atoms for atom in clause.body):
                if clause.head is None:
                    return true_atoms, False
                true_atoms.add(clause.head)
                changed = True
    return true_atoms, True
