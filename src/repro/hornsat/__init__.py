"""Linear-time propositional Horn-SAT — the "datalog technique" (§3).

The paper reproduces Minoux' algorithm verbatim in its Figure 3; this
package implements it (:func:`minoux`) along with the quadratic naive
fixpoint iteration (:func:`naive_fixpoint`) used as the baseline in
experiment E3, and a :class:`HornProgram` container shared with the
datalog grounder and the arc-consistency encoder.
"""

from repro.hornsat.program import HornClause, HornProgram
from repro.hornsat.minoux import minoux, MinouxTrace
from repro.hornsat.naive import naive_fixpoint

__all__ = [
    "HornClause",
    "HornProgram",
    "minoux",
    "MinouxTrace",
    "naive_fixpoint",
]
