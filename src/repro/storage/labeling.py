"""Node labeling schemes (Section 2: "Orders and Labeling Schemes").

The paper surveys labeling schemes that decide axis relationships from
labels alone ([74, 66, 63, 75, 23]).  Three representatives:

- :class:`IntervalLabeling` — the (pre, post) scheme of [43/Grust]: a
  node is labeled ``(pre, post, level)``; every axis of the paper is
  decidable by integer comparisons,
- :class:`DietzLabeling` — Dietz-Sleator style gapped pre/post numbers
  that leave room for a bounded number of insertions without global
  renumbering [23],
- :class:`OrdpathLabeling` — ORDPATH-style dotted-decimal labels [63]:
  ancestor tests by prefix, document order lexicographic, and
  insert-friendly "careting in" between siblings using even components.

All schemes implement the same protocol: ``label_of(v)``,
``is_ancestor(l1, l2)``, ``is_following(l1, l2)``, ``document_order_key``.
"""

from __future__ import annotations

from repro.trees.tree import Tree

__all__ = ["IntervalLabeling", "DietzLabeling", "OrdpathLabeling"]


class IntervalLabeling:
    """(pre, post, level) labels; all axis checks are O(1) comparisons."""

    def __init__(self, tree: Tree):
        self.tree = tree
        self._labels = [
            (v, tree.post[v], tree.depth[v]) for v in tree.nodes()
        ]

    def label_of(self, v: int) -> tuple[int, int, int]:
        return self._labels[v]

    @staticmethod
    def is_ancestor(a: tuple, d: tuple) -> bool:
        """Child+(a, d) from labels alone: a.pre < d.pre and d.post < a.post."""
        return a[0] < d[0] and d[1] < a[1]

    @staticmethod
    def is_parent(a: tuple, d: tuple) -> bool:
        return IntervalLabeling.is_ancestor(a, d) and d[2] == a[2] + 1

    @staticmethod
    def is_following(left: tuple, right: tuple) -> bool:
        return left[0] < right[0] and left[1] < right[1]

    @staticmethod
    def document_order_key(label: tuple) -> int:
        return label[0]

    def bits_per_label(self) -> int:
        """Labels cost O(log |A|) bits each, giving the O(||A|| log |A|)
        total representation size quoted in Section 2."""
        n = max(self.tree.n, 2)
        return 3 * max(1, (n - 1).bit_length())


class DietzLabeling:
    """Gapped (pre, post) numbering in the spirit of Dietz & Sleator [23].

    Pre/post indexes are multiplied by a gap factor so that up to
    ``gap - 1`` nodes can later be inserted between any two existing
    nodes without renumbering; :meth:`insert_leaf_label` demonstrates
    the update path by synthesizing a fresh label inside a parent's
    interval."""

    def __init__(self, tree: Tree, gap: int = 16):
        if gap < 2:
            raise ValueError("gap must be at least 2")
        self.tree = tree
        self.gap = gap
        self._labels = [
            ((v + 1) * gap, (tree.post[v] + 1) * gap) for v in tree.nodes()
        ]

    def label_of(self, v: int) -> tuple[int, int]:
        return self._labels[v]

    @staticmethod
    def is_ancestor(a: tuple, d: tuple) -> bool:
        return a[0] < d[0] and d[1] < a[1]

    @staticmethod
    def is_following(left: tuple, right: tuple) -> bool:
        return left[0] < right[0] and left[1] < right[1]

    @staticmethod
    def document_order_key(label: tuple) -> int:
        return label[0]

    def insert_leaf_label(self, parent: int) -> tuple[int, int] | None:
        """A label for a new last child of ``parent``, or None if the gap
        under the parent is exhausted (a real system would then locally
        renumber)."""
        p_pre, p_post = self._labels[parent]
        kids = self.tree.children[parent]
        if kids:
            last_pre, last_post = self._labels[kids[-1]]
            lo_pre, lo_post = last_pre, last_post
        else:
            lo_pre, lo_post = p_pre, p_pre
        new_pre = lo_pre + (self.gap // 2)
        new_post = (lo_post + p_post) // 2
        if new_post <= lo_post or new_post >= p_post:
            return None
        return (new_pre, new_post)


class OrdpathLabeling:
    """ORDPATH [63]: the root is ``(1,)``; the i-th child of a node with
    label L is ``L + (2*i + 1,)``.  Ancestry is label-prefix testing and
    document order is lexicographic order; even components ("carets")
    can be interposed to insert between siblings without relabeling."""

    def __init__(self, tree: Tree):
        self.tree = tree
        labels: list[tuple[int, ...]] = [()] * tree.n
        labels[tree.root] = (1,)
        # ids are pre-order, so parents are labeled before children
        for v in tree.nodes():
            for i, c in enumerate(tree.children[v]):
                labels[c] = labels[v] + (2 * i + 1,)
        self._labels = labels

    def label_of(self, v: int) -> tuple[int, ...]:
        return self._labels[v]

    @staticmethod
    def is_ancestor(a: tuple, d: tuple) -> bool:
        """Strict prefix test on the component sequences."""
        return len(a) < len(d) and d[: len(a)] == a

    @staticmethod
    def is_following(left: tuple, right: tuple) -> bool:
        """Document order is lexicographic; following additionally
        excludes the ancestor case."""
        return left < right and not OrdpathLabeling.is_ancestor(left, right)

    @staticmethod
    def document_order_key(label: tuple) -> tuple:
        return label

    @staticmethod
    def between(left: tuple, right: tuple) -> tuple[int, ...]:
        """A fresh sibling label strictly between two sibling labels,
        without touching any existing label (the ORDPATH insert trick:
        descend through an even caret when the integer gap is closed)."""
        head, l_last = left[:-1], left[-1]
        r_last = right[-1]
        if r_last - l_last > 1:
            mid = l_last + 1
            if mid % 2 == 0:
                # even value: legal only as caret, extend with odd 1
                return head + (mid, 1)
            return head + (mid,)
        # adjacent odd values: caret in below the left label
        return head + (l_last + 1, 1)
