"""The eXtended Access Support Relation (XASR) of Example 2.1 / Figure 2.

One row per tree node: ``(pre, post, parent_pre, label)`` — with
``parent_pre`` NULL (None) for the root.  Figure 2(b) of the paper uses
1-based pre/post indexes; we keep that convention here so the worked
example reproduces verbatim, and provide converters from/to the 0-based
node ids of :class:`~repro.trees.tree.Tree`.

The two SQL views of Example 2.1 are :func:`descendant_view` (a single
theta-join — a *structural join*) and :func:`child_view` (a selection +
projection on ``parent_pre``).
"""

from __future__ import annotations

from repro.storage.relational import Table
from repro.trees.tree import Tree

__all__ = ["XASR", "descendant_view", "child_view"]


class XASR:
    """The XASR relation of a tree, as a :class:`Table` plus helpers."""

    def __init__(self, table: Table):
        self.table = table

    @classmethod
    def from_tree(cls, tree: Tree) -> "XASR":
        rows = []
        for v in tree.nodes():
            parent = tree.parent[v]
            rows.append(
                (
                    v + 1,                       # pre, 1-based as in Figure 2
                    tree.post[v] + 1,            # post, 1-based
                    None if parent < 0 else parent + 1,
                    tree.label[v],
                )
            )
        return cls(Table(("pre", "post", "parent_pre", "lab"), rows))

    def to_tree_ids(self, pre: int) -> int:
        """Convert a 1-based pre index back to a node id."""
        return pre - 1

    def size(self) -> int:
        """Number of rows (= number of nodes); each row is O(log |A|) bits,
        so the representation is O(||A|| · log |A|) as stated in §2."""
        return len(self.table)

    def descendant_pairs(self) -> Table:
        return descendant_view(self.table)

    def child_pairs(self) -> Table:
        return child_view(self.table)

    def __repr__(self) -> str:  # pragma: no cover
        return f"XASR({len(self.table)} nodes)"


def descendant_view(xasr: Table) -> Table:
    """Example 2.1::

        CREATE VIEW descendant AS
        SELECT r1.pre, r2.pre FROM R r1, R r2
        WHERE r1.pre < r2.pre AND r2.post < r1.post;

    Implemented as the literal theta-join (the *structural join*).
    """
    joined = xasr.theta_join(
        xasr, lambda r1, r2: r1["pre"] < r2["pre"] and r2["post"] < r1["post"]
    )
    return joined.project(["pre", "pre_r"], dedup=False).rename(
        {"pre": "anc_pre", "pre_r": "desc_pre"}
    )


def child_view(xasr: Table) -> Table:
    """Example 2.1::

        CREATE VIEW child AS
        SELECT parent_pre, pre FROM R
        WHERE parent_pre is not NULL;
    """
    return (
        xasr.select(lambda r: r["parent_pre"] is not None)
        .project(["parent_pre", "pre"], dedup=False)
        .rename({"parent_pre": "anc_pre", "pre": "desc_pre"})
    )
