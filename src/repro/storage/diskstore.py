"""A compact serialized tree store (secondary-storage flavor, [51]).

The paper's author's VLDB'03 system [51] evaluates node-selecting
queries on XML in *secondary storage*; the point reproduced here is the
data layout: the whole index of Section 2 — parent, post, subtree-end,
label ids — packs into flat integer arrays that serialize to a single
binary file and load back with ``array`` module block reads (no
per-node parsing).  All O(1) axis checks work directly on the loaded
arrays through the normal :class:`Tree` API.

Format (little-endian, version 1)::

    magic b"RTRE" | version u32 | n u32 | n_labels u32
    label table: n_labels length-prefixed UTF-8 strings
    parent: n × i64   (root = -1)
    label ids: n × u32
    children: CSR — offsets (n+1) × u32, then child ids (n-1) × u32

Multi-labeled nodes fall back to a JSON side table appended at the end
(rare in practice; absent for single-label trees).

**Crash safety.**  Since the resilience PR the on-disk file carries a
12-byte checksum trailer — ``b"RCRC"`` + CRC32(payload) + payload
length, little-endian — and :func:`dump_tree` writes atomically: the
bytes go to ``path + ".tmp"``, are fsynced, and land via
``os.replace``, so a crash (even ``kill -9``) between write and rename
leaves the *previous* version intact and loadable.  On load a present
trailer is verified and any mismatch raises a typed
:class:`~repro.errors.StorageError` naming the path and byte offset;
files written before the trailer existed still load (the parser has
always ignored trailing bytes, so the formats are mutually
compatible).  :func:`verify_store` checks a file without building the
tree — the ``repro store verify`` command.
"""

from __future__ import annotations

import io
import json
import os
import struct
import zlib
from array import array

from repro.errors import ParseError, StorageError
from repro.faults import faultpoint, register_site
from repro.trees.tree import Tree

__all__ = [
    "dump_tree",
    "load_tree",
    "dumps_tree",
    "loads_tree",
    "read_blob",
    "verify_store",
    "write_blob",
]

_MAGIC = b"RTRE"
_VERSION = 1

#: checksum trailer: magic + CRC32(payload) + len(payload), 12 bytes
_TRAILER_MAGIC = b"RCRC"
_TRAILER_LEN = 12

register_site("disk.read", "document bytes read from disk")
register_site("disk.write", "atomic store write (tmp + fsync + replace)")
register_site("disk.verify", "store checksum verification")


def _truncate_bytes(data: bytes, rng) -> bytes:
    """Corruption mutator for ``disk.read``: keep a seeded prefix."""
    if len(data) < 2:
        return b""
    return data[: rng.randrange(1, len(data))]


def _make_trailer(payload: bytes) -> bytes:
    return _TRAILER_MAGIC + struct.pack(
        "<II", zlib.crc32(payload) & 0xFFFFFFFF, len(payload)
    )


def _check_trailer(
    data: bytes, path: "str | None" = None, strict: bool = False
) -> "tuple[bytes, bool]":
    """Detect and verify the checksum trailer; returns (payload, had_trailer).

    A well-formed trailer whose CRC disagrees with the payload raises a
    typed :class:`~repro.errors.StorageError` naming the path and the
    byte offset of the trailer.  Data without a trailer passes through
    untouched (files written before the trailer existed) unless
    ``strict`` — the write-side readback check, where a missing trailer
    means the write itself was mangled.  Verification is the
    ``disk.verify`` fault-injection site.
    """
    where = f" in tree store {path!r}" if path else ""
    if (
        len(data) >= _TRAILER_LEN
        and data[-_TRAILER_LEN:-8] == _TRAILER_MAGIC
    ):
        expected, length = struct.unpack("<II", data[-8:])
        if length == len(data) - _TRAILER_LEN:
            data = faultpoint("disk.verify", data, mutator=_truncate_bytes)
            payload = data[:-_TRAILER_LEN]
            actual = zlib.crc32(payload) & 0xFFFFFFFF
            if actual != expected:
                raise StorageError(
                    f"checksum mismatch{where}: CRC32 of {len(payload)} "
                    f"payload bytes is {actual:#010x} but the trailer at "
                    f"offset {len(data) - _TRAILER_LEN} says {expected:#010x}"
                )
            return payload, True
    if strict:
        raise StorageError(
            f"missing or malformed checksum trailer{where} "
            f"(expected {_TRAILER_MAGIC!r} at offset "
            f"{max(len(data) - _TRAILER_LEN, 0)})"
        )
    return data, False


def _read_exact(buf: io.BytesIO, n: int, what: str) -> bytes:
    """Read exactly ``n`` bytes or fail with a typed error — a short
    read means the store was truncated or corrupted on disk."""
    data = buf.read(n)
    if len(data) != n:
        raise ParseError(
            f"truncated tree store: expected {n} bytes of {what}, "
            f"got {len(data)}"
        )
    return data


def dumps_tree(tree: Tree) -> bytes:
    """Serialize a tree to the compact binary format."""
    out = io.BytesIO()
    label_table: dict[str, int] = {}
    label_ids = array("I")
    for lab in tree.label:
        if lab not in label_table:
            label_table[lab] = len(label_table)
        label_ids.append(label_table[lab])
    out.write(_MAGIC)
    out.write(struct.pack("<III", _VERSION, tree.n, len(label_table)))
    for lab in label_table:  # dicts preserve insertion order
        encoded = lab.encode("utf-8")
        out.write(struct.pack("<I", len(encoded)))
        out.write(encoded)
    parent = array("q", tree.parent)
    out.write(parent.tobytes())
    out.write(label_ids.tobytes())
    offsets = array("I", [0])
    child_ids = array("I")
    for kids in tree.children:
        child_ids.extend(kids)
        offsets.append(len(child_ids))
    out.write(offsets.tobytes())
    out.write(child_ids.tobytes())
    # extra labels side table (only when some node is multi-labeled)
    extras = {
        str(v): sorted(labs - {tree.label[v]})
        for v, labs in enumerate(tree.labels)
        if len(labs) > 1
    }
    blob = json.dumps(extras).encode("utf-8") if extras else b""
    out.write(struct.pack("<I", len(blob)))
    out.write(blob)
    payload = out.getvalue()
    return payload + _make_trailer(payload)


def loads_tree(data: bytes, path: "str | None" = None) -> Tree:
    """Deserialize the compact binary format back into a Tree.

    Any truncation or corruption surfaces as a typed
    :class:`~repro.errors.ParseError` (structure) or
    :class:`~repro.errors.StorageError` (checksum) — never a raw
    ``struct.error`` or an array size mismatch.  Data carrying the
    checksum trailer is verified first; trailer-less data (pre-trailer
    files) parses as before.
    """
    data, _ = _check_trailer(data, path)
    buf = io.BytesIO(data)
    if buf.read(4) != _MAGIC:
        raise ParseError("not a repro tree store (bad magic)")
    version, n, n_labels = struct.unpack("<III", _read_exact(buf, 12, "header"))
    if version != _VERSION:
        raise ParseError(f"unsupported tree store version {version}")
    table: list[str] = []
    try:
        for _ in range(n_labels):
            (length,) = struct.unpack(
                "<I", _read_exact(buf, 4, "label length")
            )
            table.append(_read_exact(buf, length, "label").decode("utf-8"))
    except UnicodeDecodeError as exc:
        raise ParseError(f"corrupt tree store label table: {exc}") from exc
    parent = array("q")
    parent.frombytes(_read_exact(buf, 8 * n, "parent array"))
    label_ids = array("I")
    label_ids.frombytes(_read_exact(buf, 4 * n, "label ids"))
    offsets = array("I")
    offsets.frombytes(_read_exact(buf, 4 * (n + 1), "children offsets"))
    n_children = offsets[-1] if len(offsets) else 0
    child_ids = array("I")
    child_ids.frombytes(_read_exact(buf, 4 * n_children, "children ids"))
    (blob_len,) = struct.unpack("<I", _read_exact(buf, 4, "extras length"))
    try:
        extras = (
            json.loads(_read_exact(buf, blob_len, "extras")) if blob_len else {}
        )
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ParseError(f"corrupt tree store extras table: {exc}") from exc
    if any(label_id >= len(table) for label_id in label_ids):
        raise ParseError("corrupt tree store: label id out of range")

    primary = [table[i] for i in label_ids]
    labels = []
    for v in range(n):
        extra = extras.get(str(v))
        if extra:
            labels.append(frozenset([primary[v], *extra]))
        else:
            labels.append(frozenset((primary[v],)))
    children = [
        list(child_ids[offsets[v]:offsets[v + 1]]) for v in range(n)
    ]
    return Tree(primary, labels, list(parent), children)


def dump_tree(tree: Tree, path: str) -> int:
    """Write the store file atomically; returns the byte size.

    The bytes (payload + checksum trailer) go to ``path + ".tmp"``,
    are flushed and fsynced, read back and checksum-verified, and only
    then moved into place with ``os.replace`` — so a crash at *any*
    point (even ``kill -9`` between write and rename) leaves either
    the previous version or the new one, never a torn file.  A write
    that comes back corrupted (the ``disk.write`` fault site chops the
    buffer) is caught by the readback check and raises a typed
    :class:`~repro.errors.StorageError` with the destination
    untouched.
    """
    data = dumps_tree(tree)
    blob = faultpoint("disk.write", data, mutator=_truncate_bytes)
    return _install_blob(blob, path)


def _install_blob(blob: bytes, path: str) -> int:
    """The atomic landing sequence shared by every trailered file the
    library writes (tree stores, corpus shard spills): write ``blob``
    (payload + trailer) to ``path + ".tmp"``, flush, fsync, read it
    back and verify the trailer, then ``os.replace`` into place.  A
    failure at any point leaves the previous version of ``path``
    intact and no temp litter (short of a hard kill mid-write, which
    the next attempt's ``os.replace`` of the same temp path repairs).
    """
    tmp = path + ".tmp"
    try:
        try:
            with open(tmp, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            with open(tmp, "rb") as fh:
                written = fh.read()
            _check_trailer(written, path, strict=True)
            os.replace(tmp, path)
        except OSError as exc:
            raise StorageError(
                f"cannot write tree store {path!r}: {exc}"
            ) from exc
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return len(blob)


def write_blob(path: str, payload: bytes) -> int:
    """Atomically persist an arbitrary byte payload with a CRC trailer.

    The corpus layer's primitive: shard spill files and any other
    small artifact that needs the tree store's crash-safety story
    (tmp + fsync + readback verify + ``os.replace``) without being a
    tree.  Returns the bytes written (payload + 12-byte trailer).
    """
    return _install_blob(payload + _make_trailer(payload), path)


def read_blob(path: str) -> bytes:
    """Read back a :func:`write_blob` file; returns the verified payload.

    A missing trailer, a checksum mismatch, or an I/O failure all
    surface as typed errors (:class:`~repro.errors.StorageError`)
    naming the path — a torn or tampered blob can never be mistaken
    for a short-but-valid one.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError as exc:
        raise StorageError(f"cannot read blob {path!r}: {exc}") from exc
    payload, _ = _check_trailer(data, path, strict=True)
    return payload


def load_tree(path: str) -> Tree:
    """Load a store file written by :func:`dump_tree`.

    I/O failures surface as :class:`~repro.errors.StorageError` with the
    path in the message; corrupt content as
    :class:`~repro.errors.ParseError` (structure) or
    :class:`~repro.errors.StorageError` (checksum, with the offending
    offset).  The read is a ``disk.read`` fault-injection site and the
    checksum check a ``disk.verify`` one.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError as exc:
        raise StorageError(f"cannot read tree store {path!r}: {exc}") from exc
    data = faultpoint("disk.read", data, mutator=_truncate_bytes)
    try:
        return loads_tree(data, path=path)
    except ParseError as exc:
        raise ParseError(f"tree store {path!r}: {exc}") from exc


def verify_store(path: str) -> dict:
    """Check a store file end to end without installing it anywhere.

    Verifies the checksum trailer (when present) and fully parses the
    payload; returns a summary dict.  ``checksum`` is ``"ok"`` for a
    verified trailer and ``"legacy"`` for a pre-trailer file that still
    parses.  Corruption raises the same typed errors as
    :func:`load_tree` — this is what ``repro store verify`` prints.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError as exc:
        raise StorageError(f"cannot read tree store {path!r}: {exc}") from exc
    _, had_trailer = _check_trailer(data, path)
    try:
        tree = loads_tree(data, path=path)
    except ParseError as exc:
        raise ParseError(f"tree store {path!r}: {exc}") from exc
    return {
        "path": path,
        "bytes": len(data),
        "checksum": "ok" if had_trailer else "legacy",
        "nodes": tree.n,
        "labels": len(set(tree.label)),
    }
