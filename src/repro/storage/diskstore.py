"""A compact serialized tree store (secondary-storage flavor, [51]).

The paper's author's VLDB'03 system [51] evaluates node-selecting
queries on XML in *secondary storage*; the point reproduced here is the
data layout: the whole index of Section 2 — parent, post, subtree-end,
label ids — packs into flat integer arrays that serialize to a single
binary file and load back with ``array`` module block reads (no
per-node parsing).  All O(1) axis checks work directly on the loaded
arrays through the normal :class:`Tree` API.

Format (little-endian, version 1)::

    magic b"RTRE" | version u32 | n u32 | n_labels u32
    label table: n_labels length-prefixed UTF-8 strings
    parent: n × i64   (root = -1)
    label ids: n × u32
    children: CSR — offsets (n+1) × u32, then child ids (n-1) × u32

Multi-labeled nodes fall back to a JSON side table appended at the end
(rare in practice; absent for single-label trees).
"""

from __future__ import annotations

import io
import json
import struct
from array import array

from repro.errors import ParseError, StorageError
from repro.faults import faultpoint, register_site
from repro.trees.tree import Tree

__all__ = ["dump_tree", "load_tree", "dumps_tree", "loads_tree"]

_MAGIC = b"RTRE"
_VERSION = 1

register_site("disk.read", "document bytes read from disk")


def _truncate_bytes(data: bytes, rng) -> bytes:
    """Corruption mutator for ``disk.read``: keep a seeded prefix."""
    if len(data) < 2:
        return b""
    return data[: rng.randrange(1, len(data))]


def _read_exact(buf: io.BytesIO, n: int, what: str) -> bytes:
    """Read exactly ``n`` bytes or fail with a typed error — a short
    read means the store was truncated or corrupted on disk."""
    data = buf.read(n)
    if len(data) != n:
        raise ParseError(
            f"truncated tree store: expected {n} bytes of {what}, "
            f"got {len(data)}"
        )
    return data


def dumps_tree(tree: Tree) -> bytes:
    """Serialize a tree to the compact binary format."""
    out = io.BytesIO()
    label_table: dict[str, int] = {}
    label_ids = array("I")
    for lab in tree.label:
        if lab not in label_table:
            label_table[lab] = len(label_table)
        label_ids.append(label_table[lab])
    out.write(_MAGIC)
    out.write(struct.pack("<III", _VERSION, tree.n, len(label_table)))
    for lab in label_table:  # dicts preserve insertion order
        encoded = lab.encode("utf-8")
        out.write(struct.pack("<I", len(encoded)))
        out.write(encoded)
    parent = array("q", tree.parent)
    out.write(parent.tobytes())
    out.write(label_ids.tobytes())
    offsets = array("I", [0])
    child_ids = array("I")
    for kids in tree.children:
        child_ids.extend(kids)
        offsets.append(len(child_ids))
    out.write(offsets.tobytes())
    out.write(child_ids.tobytes())
    # extra labels side table (only when some node is multi-labeled)
    extras = {
        str(v): sorted(labs - {tree.label[v]})
        for v, labs in enumerate(tree.labels)
        if len(labs) > 1
    }
    blob = json.dumps(extras).encode("utf-8") if extras else b""
    out.write(struct.pack("<I", len(blob)))
    out.write(blob)
    return out.getvalue()


def loads_tree(data: bytes) -> Tree:
    """Deserialize the compact binary format back into a Tree.

    Any truncation or corruption surfaces as a typed
    :class:`~repro.errors.ParseError` — never a raw ``struct.error`` or
    an array size mismatch.
    """
    buf = io.BytesIO(data)
    if buf.read(4) != _MAGIC:
        raise ParseError("not a repro tree store (bad magic)")
    version, n, n_labels = struct.unpack("<III", _read_exact(buf, 12, "header"))
    if version != _VERSION:
        raise ParseError(f"unsupported tree store version {version}")
    table: list[str] = []
    try:
        for _ in range(n_labels):
            (length,) = struct.unpack(
                "<I", _read_exact(buf, 4, "label length")
            )
            table.append(_read_exact(buf, length, "label").decode("utf-8"))
    except UnicodeDecodeError as exc:
        raise ParseError(f"corrupt tree store label table: {exc}") from exc
    parent = array("q")
    parent.frombytes(_read_exact(buf, 8 * n, "parent array"))
    label_ids = array("I")
    label_ids.frombytes(_read_exact(buf, 4 * n, "label ids"))
    offsets = array("I")
    offsets.frombytes(_read_exact(buf, 4 * (n + 1), "children offsets"))
    n_children = offsets[-1] if len(offsets) else 0
    child_ids = array("I")
    child_ids.frombytes(_read_exact(buf, 4 * n_children, "children ids"))
    (blob_len,) = struct.unpack("<I", _read_exact(buf, 4, "extras length"))
    try:
        extras = (
            json.loads(_read_exact(buf, blob_len, "extras")) if blob_len else {}
        )
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ParseError(f"corrupt tree store extras table: {exc}") from exc
    if any(label_id >= len(table) for label_id in label_ids):
        raise ParseError("corrupt tree store: label id out of range")

    primary = [table[i] for i in label_ids]
    labels = []
    for v in range(n):
        extra = extras.get(str(v))
        if extra:
            labels.append(frozenset([primary[v], *extra]))
        else:
            labels.append(frozenset((primary[v],)))
    children = [
        list(child_ids[offsets[v]:offsets[v + 1]]) for v in range(n)
    ]
    return Tree(primary, labels, list(parent), children)


def dump_tree(tree: Tree, path: str) -> int:
    """Write the store file; returns the byte size."""
    data = dumps_tree(tree)
    with open(path, "wb") as fh:
        fh.write(data)
    return len(data)


def load_tree(path: str) -> Tree:
    """Load a store file written by :func:`dump_tree`.

    I/O failures surface as :class:`~repro.errors.StorageError` with the
    path in the message; corrupt content as
    :class:`~repro.errors.ParseError`.  The read is a ``disk.read``
    fault-injection site.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError as exc:
        raise StorageError(f"cannot read tree store {path!r}: {exc}") from exc
    data = faultpoint("disk.read", data, mutator=_truncate_bytes)
    try:
        return loads_tree(data)
    except ParseError as exc:
        raise ParseError(f"tree store {path!r}: {exc}") from exc
