"""A minimal in-memory relational engine.

Just enough relational algebra to express the SQL views of Example 2.1
(and to host the XASR): named columns, selection, projection, theta-join,
equi-join via sort-merge, and ordering.  Rows are plain tuples; a
:class:`Table` is immutable from the caller's perspective.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.errors import QueryError

__all__ = ["Table"]


class Table:
    """A named-column relation over tuple rows."""

    __slots__ = ("columns", "rows", "_index")

    def __init__(self, columns: Sequence[str], rows: Iterable[tuple] = ()):
        self.columns = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise QueryError(f"duplicate column names: {columns}")
        self.rows = [tuple(r) for r in rows]
        for r in self.rows:
            if len(r) != len(self.columns):
                raise QueryError(
                    f"row arity {len(r)} != schema arity {len(self.columns)}"
                )
        self._index: dict[tuple[str, ...], dict] | None = None

    def col(self, name: str) -> int:
        try:
            return self.columns.index(name)
        except ValueError:
            raise QueryError(f"no column {name!r} in {self.columns}") from None

    # -- algebra -------------------------------------------------------------

    def select(self, predicate: Callable[[dict], bool]) -> "Table":
        """σ — keep rows whose column dict satisfies ``predicate``."""
        cols = self.columns
        return Table(
            cols, (r for r in self.rows if predicate(dict(zip(cols, r))))
        )

    def project(self, names: Sequence[str], dedup: bool = True) -> "Table":
        """π — keep the given columns (deduplicating by default)."""
        idx = [self.col(n) for n in names]
        projected = (tuple(r[i] for i in idx) for r in self.rows)
        if dedup:
            seen: set[tuple] = set()
            rows = []
            for row in projected:
                if row not in seen:
                    seen.add(row)
                    rows.append(row)
            return Table(names, rows)
        return Table(names, projected)

    def rename(self, mapping: dict[str, str]) -> "Table":
        return Table(
            [mapping.get(c, c) for c in self.columns], self.rows
        )

    def theta_join(
        self, other: "Table", predicate: Callable[[dict, dict], bool]
    ) -> "Table":
        """Nested-loop θ-join; output columns are the disjoint union
        (``other``'s clashing columns get an ``_r`` suffix)."""
        right_cols = [
            c + "_r" if c in self.columns else c for c in other.columns
        ]
        out_cols = list(self.columns) + right_cols
        rows = []
        left_cols, orig_right = self.columns, other.columns
        for lrow in self.rows:
            ldict = dict(zip(left_cols, lrow))
            for rrow in other.rows:
                if predicate(ldict, dict(zip(orig_right, rrow))):
                    rows.append(lrow + rrow)
        return Table(out_cols, rows)

    def equi_join(self, other: "Table", left_on: str, right_on: str) -> "Table":
        """Hash equi-join (linear plus output)."""
        right_cols = [
            c + "_r" if c in self.columns else c for c in other.columns
        ]
        out_cols = list(self.columns) + right_cols
        li, ri = self.col(left_on), other.col(right_on)
        buckets: dict = {}
        for rrow in other.rows:
            buckets.setdefault(rrow[ri], []).append(rrow)
        rows = []
        for lrow in self.rows:
            for rrow in buckets.get(lrow[li], ()):
                rows.append(lrow + rrow)
        return Table(out_cols, rows)

    def order_by(self, *names: str) -> "Table":
        idx = [self.col(n) for n in names]
        return Table(
            self.columns, sorted(self.rows, key=lambda r: tuple(r[i] for i in idx))
        )

    def distinct(self) -> "Table":
        return Table(self.columns, dict.fromkeys(self.rows))

    # -- plumbing ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.columns}, {len(self.rows)} rows)"

    def pretty(self, limit: int = 20) -> str:
        """A fixed-width rendering like the paper's Figure 2(b)."""
        header = [list(map(str, self.columns))]
        body = [[str(x) for x in row] for row in self.rows[:limit]]
        widths = [
            max(len(line[i]) for line in header + body)
            for i in range(len(self.columns))
        ]
        lines = [
            "  ".join(cell.ljust(w) for cell, w in zip(line, widths))
            for line in header + body
        ]
        if len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)
