"""Structural joins and their baselines (Section 2, [Al-Khalifa et al.]).

Given two node lists A ("ancestor side") and D ("descendant side"), the
structural join computes all pairs (a, d) with a an ancestor of d.  On
(pre, post)-labeled inputs sorted by pre this is:

- :func:`stack_structural_join` — the stack-based Stack-Tree-Desc
  algorithm: O(|A| + |D| + |output|),
- :func:`merge_structural_join` — a simpler merge variant that skips
  A-nodes that can no longer match (same asymptotics on tree inputs),
- :func:`nested_loop_join` — the O(|A| · |D|) baseline,
- :func:`transitive_closure_pairs` — the baseline the paper calls out:
  materialize Child+ by iterating Child-joins, "performing an arbitrary
  number of joins" (quadratic output in the worst case).
"""

from __future__ import annotations

from typing import Sequence

from repro.faults import faultpoint, register_site
from repro.obs.context import current as _obs_current
from repro.trees.tree import Tree

__all__ = [
    "stack_structural_join",
    "merge_structural_join",
    "nested_loop_join",
    "transitive_closure_pairs",
    "following_join",
]

# Nodes enter the joins as (pre, post) pairs; a is an ancestor of d iff
# a.pre < d.pre and d.post < a.post.

Label = tuple[int, int]

register_site("join.merge", "stack/merge structural join over two streams")


def stack_structural_join(
    ancestors: Sequence[Label], descendants: Sequence[Label]
) -> list[tuple[Label, Label]]:
    """Stack-Tree-Desc: both inputs sorted by pre; output sorted by the
    descendant's pre.  Runs in O(|A| + |D| + |output|)."""
    faultpoint("join.merge")
    ctx = _obs_current()
    if ctx is not None:
        # both streams will be scanned once — charge them up front so a
        # visit budget can refuse a join before the scan starts
        ctx.count("sj.elements_scanned", len(ancestors) + len(descendants))
        ctx.tick(len(ancestors) + len(descendants))
    out: list[tuple[Label, Label]] = []
    stack: list[Label] = []
    ai = 0
    n_anc = len(ancestors)
    for d in descendants:
        d_pre, d_post = d
        # Push every ancestor-side node that starts before d, popping the
        # ones whose interval closed already.  Because the inputs come
        # from one tree, the stack is always a chain of nested intervals.
        while ai < n_anc and ancestors[ai][0] < d_pre:
            a = ancestors[ai]
            while stack and stack[-1][1] < a[1]:
                stack.pop()
            stack.append(a)
            ai += 1
        # Pop ancestors that do not contain d.
        while stack and stack[-1][1] < d_post:
            stack.pop()
        for a in stack:
            out.append((a, d))
    if ctx is not None:
        ctx.count("sj.stack_pushes", ai)
        ctx.count("sj.pairs", len(out))
        ctx.tick(len(out))
    return out


def _contains(a: Label, d: Label) -> bool:
    return a[0] < d[0] and d[1] < a[1]


def merge_structural_join(
    ancestors: Sequence[Label], descendants: Sequence[Label]
) -> list[tuple[Label, Label]]:
    """A simpler two-cursor variant: for each d, scan the currently-open
    ancestors.  On tree-shaped inputs the open set is a chain, so the
    cost matches the stack algorithm; kept as the ablation partner."""
    faultpoint("join.merge")
    ctx = _obs_current()
    if ctx is not None:
        ctx.count("sj.elements_scanned", len(ancestors) + len(descendants))
        ctx.tick(len(ancestors) + len(descendants))
    out: list[tuple[Label, Label]] = []
    open_anc: list[Label] = []
    ai = 0
    n_anc = len(ancestors)
    for d in descendants:
        d_pre, _d_post = d
        while ai < n_anc and ancestors[ai][0] < d_pre:
            open_anc.append(ancestors[ai])
            ai += 1
        # prune closed ancestors (post < d_pre means the interval ended)
        open_anc = [a for a in open_anc if a[1] > d_pre or _contains(a, d)]
        for a in open_anc:
            if _contains(a, d):
                out.append((a, d))
    if ctx is not None:
        ctx.count("sj.pairs", len(out))
        ctx.tick(len(out))
    return out


def nested_loop_join(
    ancestors: Sequence[Label], descendants: Sequence[Label]
) -> list[tuple[Label, Label]]:
    """The quadratic baseline."""
    return [
        (a, d) for a in ancestors for d in descendants if _contains(a, d)
    ]


def following_join(
    lefts: Sequence[Label], rights: Sequence[Label]
) -> list[tuple[Label, Label]]:
    """All pairs (l, r) with Following(l, r): l.pre < r.pre, l.post < r.post."""
    return [
        (left, right)
        for left in lefts
        for right in rights
        if left[0] < right[0] and left[1] < right[1]
    ]


def transitive_closure_pairs(tree: Tree) -> set[tuple[int, int]]:
    """Materialize Child+ from the Child relation by iterated joins
    (semi-naive).  This is the approach the structural join replaces:
    its output alone is Θ(n·depth), and computing it performs one join
    round per tree level."""
    closure: set[tuple[int, int]] = set(tree.child_pairs())
    frontier = set(closure)
    while frontier:
        next_frontier: set[tuple[int, int]] = set()
        for u, v in frontier:
            for w in tree.children[v]:
                pair = (u, w)
                if pair not in closure:
                    closure.add(pair)
                    next_frontier.add(pair)
        frontier = next_frontier
    return closure
