"""Relational storage of trees: orders, labeling schemes, structural joins.

Section 2 of the paper: a node-labeled tree is completely represented by
one (pre, post, label) triple per node; the XASR of [Fiebig & Moerkotte]
adds the parent's pre index.  On this representation the transitive axes
become single *theta-joins* (structural joins) instead of transitive-
closure computations — the asymmetry experiment E2 measures.
"""

from repro.storage.relational import Table
from repro.storage.xasr import XASR, descendant_view, child_view
from repro.storage.structural_join import (
    stack_structural_join,
    merge_structural_join,
    nested_loop_join,
    transitive_closure_pairs,
)
from repro.storage.labeling import (
    IntervalLabeling,
    OrdpathLabeling,
    DietzLabeling,
)
from repro.storage.diskstore import (
    dump_tree,
    dumps_tree,
    load_tree,
    loads_tree,
    read_blob,
    verify_store,
    write_blob,
)

__all__ = [
    "Table",
    "XASR",
    "descendant_view",
    "child_view",
    "stack_structural_join",
    "merge_structural_join",
    "nested_loop_join",
    "transitive_closure_pairs",
    "IntervalLabeling",
    "OrdpathLabeling",
    "DietzLabeling",
    "dump_tree",
    "dumps_tree",
    "load_tree",
    "loads_tree",
    "read_blob",
    "verify_store",
    "write_blob",
]
